//! Run-level metrics: counters and logical-time histograms harvested from
//! every cluster run.
//!
//! Unlike the trace (which is opt-in and can be huge), the metrics are
//! always collected — they are a handful of integers and sample vectors
//! per client, cheap next to the message handling they measure. They give
//! the experiment binaries the paper's quantitative vocabulary: abort
//! rates, retry counts, quorum round-trips, view sizes, log lengths, and
//! messages per operation.

use crate::client::ClientStats;
use quorumcc_sim::{SimStats, SimTime};
use std::fmt;

/// A histogram over logical-time (or size) samples. Stores raw samples so
/// merging across clients and runs is lossless; summaries are computed on
/// demand.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogicalHistogram {
    samples: Vec<u64>,
}

impl LogicalHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogicalHistogram::default()
    }

    /// Adds one sample.
    pub fn record(&mut self, v: u64) {
        self.samples.push(v);
    }

    /// Absorbs another histogram's samples.
    pub fn merge(&mut self, other: &LogicalHistogram) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Sum of all samples.
    pub fn total(&self) -> u64 {
        self.samples.iter().sum()
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        self.samples.iter().copied().min()
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        self.samples.iter().copied().max()
    }

    /// Arithmetic mean, if any samples exist.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.total() as f64 / self.samples.len() as f64)
        }
    }

    /// Nearest-rank percentile (`p` in `[0, 100]`), if any samples exist.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        Some(sorted[rank.clamp(1, sorted.len()) - 1])
    }

    /// The raw samples, in recording order.
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// A `{count, min, p50, p90, p99, max, mean}` JSON object (all zeros
    /// when empty — hand-rolled, the vendored serde is a marker stub).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\": {}, \"min\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}, \"mean\": {:.3}}}",
            self.count(),
            self.min().unwrap_or(0),
            self.percentile(50.0).unwrap_or(0),
            self.percentile(90.0).unwrap_or(0),
            self.percentile(99.0).unwrap_or(0),
            self.max().unwrap_or(0),
            self.mean().unwrap_or(0.0),
        )
    }
}

impl fmt::Display for LogicalHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={} p50={} p90={} p99={} max={}",
            self.count(),
            self.min().unwrap_or(0),
            self.percentile(50.0).unwrap_or(0),
            self.percentile(90.0).unwrap_or(0),
            self.percentile(99.0).unwrap_or(0),
            self.max().unwrap_or(0),
        )
    }
}

/// Per-client raw metric samples, filled in by the client state machine as
/// the run progresses and aggregated into a [`RunTelemetry`] by the
/// cluster harvest.
#[derive(Debug, Clone, Default)]
pub struct ClientMetrics {
    /// Quorum phases that timed out and were re-broadcast.
    pub phase_retries: u64,
    /// Aborted transactions re-run as fresh actions.
    pub txn_reruns: u64,
    /// Initial-quorum (read) round-trips, in ticks.
    pub initial_rt: Vec<SimTime>,
    /// Final-quorum (write) round-trips, in ticks.
    pub final_rt: Vec<SimTime>,
    /// Whole-operation latencies (read start → write quorum), in ticks.
    pub op_latency: Vec<SimTime>,
    /// Entries in each view pushed on a final-quorum write.
    pub view_sizes: Vec<u64>,
    /// Raw log entries received across all `LogReply` payloads.
    pub log_entries_shipped: u64,
    /// Entry-equivalents per `LogReply` (entries + 1 per checkpoint).
    pub reply_payload: Vec<u64>,
    /// Batch envelopes this process flushed (0 when batching is off).
    pub batches_flushed: u64,
    /// Payloads per flushed envelope (empty when batching is off).
    pub batch_fill: Vec<u64>,
    /// `Resolve` messages re-sent by the frontier-repair timer (0 when
    /// retransmission is off).
    pub resolve_retransmits: u64,
    /// Retransmit timer fires that observed no durable-frontier progress
    /// since the previous fire (0 when retransmission is off).
    pub frontier_stalls: u64,
}

/// Aggregated observability record for one cluster run (or a merged set
/// of runs of the same protocol) — the operational counterpart of the
/// theory pipeline's `BENCH_*.json` phase telemetry.
#[derive(Debug, Clone, Default)]
pub struct RunTelemetry {
    /// Protocol mode name (`static` / `hybrid` / `dynamic-2pl`).
    pub mode: String,
    /// Runs merged into this record.
    pub runs: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted on a concurrency conflict.
    pub aborted_conflict: u64,
    /// Transactions aborted on quorum unavailability.
    pub aborted_unavailable: u64,
    /// Individual operations completed.
    pub ops_completed: u64,
    /// Quorum phases re-broadcast after a timeout.
    pub phase_retries: u64,
    /// Aborted transactions re-run as fresh actions.
    pub txn_reruns: u64,
    /// Transactions bounced on a stale configuration epoch and retried
    /// under the adopted one (free retries; not part of [`Self::decided`],
    /// since each one re-runs to a real verdict).
    pub stale_epoch_retries: u64,
    /// Messages submitted to the network.
    pub msgs_sent: u64,
    /// Messages delivered.
    pub msgs_delivered: u64,
    /// Messages lost (drop, partition, crash).
    pub msgs_dropped: u64,
    /// Messages the lossy network delivered twice.
    pub msgs_duplicated: u64,
    /// Messages the lossy network delayed past their natural slot.
    pub msgs_reordered: u64,
    /// Stale read frontiers repositories answered with a full log
    /// transfer instead of a delta.
    pub full_log_fallbacks: u64,
    /// Crash recoveries volatile repositories performed.
    pub recoveries: u64,
    /// Timer events fired.
    pub timers: u64,
    /// Initial-quorum (read) round-trip ticks.
    pub initial_rt: LogicalHistogram,
    /// Final-quorum (write) round-trip ticks.
    pub final_rt: LogicalHistogram,
    /// Whole-operation latency ticks.
    pub op_latency: LogicalHistogram,
    /// View sizes pushed on final-quorum writes.
    pub view_sizes: LogicalHistogram,
    /// Raw log entries shipped in `LogReply` payloads — the quantity
    /// delta shipping and compaction exist to shrink.
    pub log_entries_shipped: u64,
    /// Entry-equivalents per `LogReply` (entries + 1 per checkpoint).
    pub reply_payload: LogicalHistogram,
    /// Per-repository, per-object log lengths at the end of the run.
    pub log_lengths: LogicalHistogram,
    /// Configured batch size (1 = batching off).
    pub batch_size: u64,
    /// Batch envelopes flushed across all processes (0 when batching is
    /// off).
    pub batches_flushed: u64,
    /// Payloads per flushed envelope (empty when batching is off).
    pub batch_fill: LogicalHistogram,
    /// Logical payload messages submitted: `msgs_sent` with every batch
    /// envelope counted at its full weight. Equal to `msgs_sent` when
    /// nothing batches.
    pub payload_msgs: u64,
    /// Status records shipped in `LogReply` payloads across all
    /// repositories — the quantity scoped status shipping exists to
    /// shrink.
    pub statuses_shipped: u64,
    /// Status tombstones dropped by status GC (0 when GC is off).
    pub statuses_gcd: u64,
    /// Largest per-repository status-table population observed at any
    /// resolution (resolution table + per-log statuses); bounds the
    /// gossip state a single site ever held.
    pub status_table_peak: u64,
    /// `Resolve` messages clients re-sent through the frontier-repair
    /// timer (0 when retransmission is off).
    pub resolve_ack_retransmits: u64,
    /// Supervised connections re-established after a socket death (0 on
    /// the DES/channels backends, which have no sockets).
    pub reconnects: u64,
    /// Retransmit timer fires that observed a stalled durable-GC frontier
    /// (0 when retransmission is off).
    pub frontier_stalls: u64,
    /// Sites re-admitted to membership by a grow-epoch reconfiguration
    /// after a crash (0 without the self-healing policy).
    pub rejoins: u64,
}

impl RunTelemetry {
    /// Builds the record for one run from its harvested parts.
    pub fn from_run(
        mode: &str,
        stats: &[ClientStats],
        metrics: &[ClientMetrics],
        sim: SimStats,
        log_lengths: impl IntoIterator<Item = u64>,
    ) -> Self {
        let mut out = RunTelemetry {
            mode: mode.to_string(),
            runs: 1,
            msgs_sent: sim.sent as u64,
            msgs_delivered: sim.delivered as u64,
            msgs_dropped: sim.dropped as u64,
            msgs_duplicated: sim.duplicated as u64,
            msgs_reordered: sim.reordered as u64,
            timers: sim.timers as u64,
            batch_size: 1,
            payload_msgs: sim.payload_msgs as u64,
            ..RunTelemetry::default()
        };
        for s in stats {
            out.committed += s.committed as u64;
            out.aborted_conflict += s.aborted_conflict as u64;
            out.aborted_unavailable += s.aborted_unavailable as u64;
            out.ops_completed += s.ops_completed as u64;
            out.stale_epoch_retries += s.stale_retries as u64;
        }
        for m in metrics {
            out.phase_retries += m.phase_retries;
            out.txn_reruns += m.txn_reruns;
            for &v in &m.initial_rt {
                out.initial_rt.record(v);
            }
            for &v in &m.final_rt {
                out.final_rt.record(v);
            }
            for &v in &m.op_latency {
                out.op_latency.record(v);
            }
            for &v in &m.view_sizes {
                out.view_sizes.record(v);
            }
            out.log_entries_shipped += m.log_entries_shipped;
            for &v in &m.reply_payload {
                out.reply_payload.record(v);
            }
            out.batches_flushed += m.batches_flushed;
            for &v in &m.batch_fill {
                out.batch_fill.record(v);
            }
            out.resolve_ack_retransmits += m.resolve_retransmits;
            out.frontier_stalls += m.frontier_stalls;
        }
        for len in log_lengths {
            out.log_lengths.record(len);
        }
        out
    }

    /// Transactions that reached a verdict (committed or aborted).
    pub fn decided(&self) -> u64 {
        self.committed + self.aborted_conflict + self.aborted_unavailable
    }

    /// Fraction of decided transactions that aborted (0 when none
    /// decided) — the measured quantity the paper's comparison turns on.
    pub fn abort_rate(&self) -> f64 {
        let d = self.decided();
        if d == 0 {
            0.0
        } else {
            (self.aborted_conflict + self.aborted_unavailable) as f64 / d as f64
        }
    }

    /// Network messages per completed operation (0 when none completed).
    pub fn messages_per_op(&self) -> f64 {
        if self.ops_completed == 0 {
            0.0
        } else {
            self.msgs_sent as f64 / self.ops_completed as f64
        }
    }

    /// Log entries shipped per completed operation (0 when none
    /// completed) — the acceptance metric for delta shipping.
    pub fn entries_shipped_per_op(&self) -> f64 {
        if self.ops_completed == 0 {
            0.0
        } else {
            self.log_entries_shipped as f64 / self.ops_completed as f64
        }
    }

    /// Merges another run's telemetry (same mode) into this one.
    pub fn merge(&mut self, other: &RunTelemetry) {
        if self.mode.is_empty() {
            self.mode = other.mode.clone();
        }
        self.runs += other.runs;
        self.committed += other.committed;
        self.aborted_conflict += other.aborted_conflict;
        self.aborted_unavailable += other.aborted_unavailable;
        self.ops_completed += other.ops_completed;
        self.phase_retries += other.phase_retries;
        self.txn_reruns += other.txn_reruns;
        self.stale_epoch_retries += other.stale_epoch_retries;
        self.msgs_sent += other.msgs_sent;
        self.msgs_delivered += other.msgs_delivered;
        self.msgs_dropped += other.msgs_dropped;
        self.msgs_duplicated += other.msgs_duplicated;
        self.msgs_reordered += other.msgs_reordered;
        self.full_log_fallbacks += other.full_log_fallbacks;
        self.recoveries += other.recoveries;
        self.timers += other.timers;
        self.initial_rt.merge(&other.initial_rt);
        self.final_rt.merge(&other.final_rt);
        self.op_latency.merge(&other.op_latency);
        self.view_sizes.merge(&other.view_sizes);
        self.log_entries_shipped += other.log_entries_shipped;
        self.reply_payload.merge(&other.reply_payload);
        self.log_lengths.merge(&other.log_lengths);
        self.batch_size = self.batch_size.max(other.batch_size);
        self.batches_flushed += other.batches_flushed;
        self.batch_fill.merge(&other.batch_fill);
        self.payload_msgs += other.payload_msgs;
        self.statuses_shipped += other.statuses_shipped;
        self.statuses_gcd += other.statuses_gcd;
        self.status_table_peak = self.status_table_peak.max(other.status_table_peak);
        self.resolve_ack_retransmits += other.resolve_ack_retransmits;
        self.reconnects += other.reconnects;
        self.frontier_stalls += other.frontier_stalls;
        self.rejoins += other.rejoins;
    }

    /// A JSON object with every counter, derived rate, and histogram
    /// summary (hand-rolled; the vendored serde is a marker stub).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("      \"mode\": \"{}\",\n", self.mode));
        s.push_str(&format!("      \"runs\": {},\n", self.runs));
        s.push_str(&format!("      \"committed\": {},\n", self.committed));
        s.push_str(&format!(
            "      \"aborted_conflict\": {},\n",
            self.aborted_conflict
        ));
        s.push_str(&format!(
            "      \"aborted_unavailable\": {},\n",
            self.aborted_unavailable
        ));
        s.push_str(&format!(
            "      \"ops_completed\": {},\n",
            self.ops_completed
        ));
        s.push_str(&format!(
            "      \"abort_rate\": {:.4},\n",
            self.abort_rate()
        ));
        s.push_str(&format!(
            "      \"phase_retries\": {},\n",
            self.phase_retries
        ));
        s.push_str(&format!("      \"txn_reruns\": {},\n", self.txn_reruns));
        s.push_str(&format!(
            "      \"stale_epoch_retries\": {},\n",
            self.stale_epoch_retries
        ));
        s.push_str(&format!("      \"msgs_sent\": {},\n", self.msgs_sent));
        s.push_str(&format!(
            "      \"msgs_delivered\": {},\n",
            self.msgs_delivered
        ));
        s.push_str(&format!("      \"msgs_dropped\": {},\n", self.msgs_dropped));
        s.push_str(&format!(
            "      \"msgs_duplicated\": {},\n",
            self.msgs_duplicated
        ));
        s.push_str(&format!(
            "      \"msgs_reordered\": {},\n",
            self.msgs_reordered
        ));
        s.push_str(&format!(
            "      \"full_log_fallbacks\": {},\n",
            self.full_log_fallbacks
        ));
        s.push_str(&format!("      \"recoveries\": {},\n", self.recoveries));
        s.push_str(&format!("      \"timers\": {},\n", self.timers));
        s.push_str(&format!(
            "      \"messages_per_op\": {:.3},\n",
            self.messages_per_op()
        ));
        s.push_str(&format!(
            "      \"initial_rt\": {},\n",
            self.initial_rt.to_json()
        ));
        s.push_str(&format!(
            "      \"final_rt\": {},\n",
            self.final_rt.to_json()
        ));
        s.push_str(&format!(
            "      \"op_latency\": {},\n",
            self.op_latency.to_json()
        ));
        s.push_str(&format!(
            "      \"view_sizes\": {},\n",
            self.view_sizes.to_json()
        ));
        s.push_str(&format!(
            "      \"log_entries_shipped\": {},\n",
            self.log_entries_shipped
        ));
        s.push_str(&format!(
            "      \"entries_shipped_per_op\": {:.3},\n",
            self.entries_shipped_per_op()
        ));
        s.push_str(&format!(
            "      \"reply_payload\": {},\n",
            self.reply_payload.to_json()
        ));
        s.push_str(&format!("      \"batch_size\": {},\n", self.batch_size));
        s.push_str(&format!(
            "      \"batches_flushed\": {},\n",
            self.batches_flushed
        ));
        s.push_str(&format!(
            "      \"batch_fill\": {},\n",
            self.batch_fill.to_json()
        ));
        s.push_str(&format!("      \"payload_msgs\": {},\n", self.payload_msgs));
        s.push_str(&format!(
            "      \"statuses_shipped\": {},\n",
            self.statuses_shipped
        ));
        s.push_str(&format!("      \"statuses_gcd\": {},\n", self.statuses_gcd));
        s.push_str(&format!(
            "      \"status_table_peak\": {},\n",
            self.status_table_peak
        ));
        s.push_str(&format!(
            "      \"resolve_ack_retransmits\": {},\n",
            self.resolve_ack_retransmits
        ));
        s.push_str(&format!("      \"reconnects\": {},\n", self.reconnects));
        s.push_str(&format!(
            "      \"frontier_stalls\": {},\n",
            self.frontier_stalls
        ));
        s.push_str(&format!("      \"rejoins\": {},\n", self.rejoins));
        s.push_str(&format!(
            "      \"log_lengths\": {}\n",
            self.log_lengths.to_json()
        ));
        s.push_str("    }");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_summaries() {
        let mut h = LogicalHistogram::new();
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.mean(), None);
        for v in [10, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(40));
        assert_eq!(h.percentile(50.0), Some(20));
        assert_eq!(h.percentile(100.0), Some(40));
        assert_eq!(h.percentile(0.0), Some(10));
        assert_eq!(h.mean(), Some(25.0));
    }

    #[test]
    fn histogram_merge_is_lossless() {
        let mut a = LogicalHistogram::new();
        a.record(1);
        let mut b = LogicalHistogram::new();
        b.record(9);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), Some(9));
    }

    #[test]
    fn telemetry_reconciles_with_client_stats() {
        let stats = [
            ClientStats {
                committed: 3,
                aborted_conflict: 1,
                aborted_unavailable: 0,
                ops_completed: 6,
                stale_retries: 0,
            },
            ClientStats {
                committed: 2,
                aborted_conflict: 0,
                aborted_unavailable: 1,
                ops_completed: 4,
                stale_retries: 2,
            },
        ];
        let metrics = [ClientMetrics::default(), ClientMetrics::default()];
        let t = RunTelemetry::from_run("hybrid", &stats, &metrics, SimStats::default(), [3, 3]);
        assert_eq!(t.committed, 5);
        assert_eq!(t.decided(), 7);
        assert_eq!(t.stale_epoch_retries, 2);
        assert!((t.abort_rate() - 2.0 / 7.0).abs() < 1e-12);
        assert_eq!(t.log_lengths.count(), 2);
    }

    #[test]
    fn merge_accumulates_runs() {
        let mut a = RunTelemetry {
            mode: "static".into(),
            runs: 1,
            committed: 2,
            ..RunTelemetry::default()
        };
        let b = RunTelemetry {
            mode: "static".into(),
            runs: 1,
            committed: 3,
            ..RunTelemetry::default()
        };
        a.merge(&b);
        assert_eq!(a.runs, 2);
        assert_eq!(a.committed, 5);
    }

    #[test]
    fn json_is_wellformed_enough() {
        let t = RunTelemetry {
            mode: "hybrid".into(),
            ..RunTelemetry::default()
        };
        let j = t.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"abort_rate\": 0.0000"));
        assert!(j.contains("\"initial_rt\": {\"count\": 0"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
