//! The online safety oracle: after a run — every run, if you let it —
//! the committed history and the repositories' final state are audited
//! against the properties the protocol is supposed to keep *regardless of
//! what the network and the fault plan did*.
//!
//! Four families of checks:
//!
//! 1. **Atomicity**: each object's captured behavioral history must
//!    satisfy the run's serializability mode, via the same
//!    [`crate::history::satisfies`] machinery the verifier uses.
//! 2. **No committed write lost**: every operation a *committed* action
//!    performed must survive somewhere — as log entries on some set of
//!    repositories, or folded into a checkpoint that covers the action.
//! 3. **Version/epoch monotonicity per site**: a repository's per-object
//!    version counters and its configuration version must never fall
//!    below their all-time highs. The highs are tracked in shadow
//!    counters that survive crashes by design (instrumentation sits
//!    outside the failure model), so amnesia the durability layer failed
//!    to mask shows up here.
//! 4. **Checkpoint nesting**: any two repositories' checkpoints for the
//!    same object must cover nested sets of actions with identical commit
//!    timestamps — the invariant committed-prefix compaction relies on
//!    for exact checkpoint adoption.
//!
//! The oracle is deliberately conservative: it never consults protocol
//! internals, only client records and final repository state, so a bug
//! that corrupts internal bookkeeping still has to falsify one of these
//! observable properties to matter — and then the oracle flags it.

use crate::client::Record;
use crate::cluster::RunReport;
use crate::history;
use crate::types::ObjId;
use quorumcc_model::spec::ExploreBounds;
use quorumcc_model::{ActionId, Classified, Enumerable};
use quorumcc_sim::Timestamp;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One property the run falsified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SafetyViolation {
    /// An object's committed history is not serializable in the run's
    /// mode.
    NonAtomic {
        /// The violating object.
        obj: ObjId,
    },
    /// A committed action's operation on `obj` survives on no repository,
    /// neither as a log entry nor folded into a covering checkpoint.
    LostWrite {
        /// The committed action.
        action: ActionId,
        /// The object whose entries are missing.
        obj: ObjId,
        /// Entries the action appended (from its own records).
        expected: u32,
        /// Distinct entry timestamps found across all repositories.
        found: u32,
    },
    /// A repository's per-object version counter fell below its all-time
    /// high `count` times — a recovered site re-issued version numbers.
    VersionRegression {
        /// The repository (process id).
        repo: u32,
        /// How many regressions its shadow counter observed.
        count: u64,
    },
    /// A repository's configuration version fell below its all-time high.
    EpochRegression {
        /// The repository (process id).
        repo: u32,
        /// How many regressions its shadow counter observed.
        count: u64,
    },
    /// Two repositories hold checkpoints for `obj` whose covered action
    /// sets do not nest (or disagree on a commit timestamp).
    CheckpointDivergence {
        /// First repository.
        repo_a: u32,
        /// Second repository.
        repo_b: u32,
        /// The object with diverging checkpoints.
        obj: ObjId,
    },
}

impl fmt::Display for SafetyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SafetyViolation::NonAtomic { obj } => {
                write!(f, "non-atomic history on obj {}", obj.0)
            }
            SafetyViolation::LostWrite {
                action,
                obj,
                expected,
                found,
            } => write!(
                f,
                "lost write: committed action {} expected {expected} entries on obj {}, found {found}",
                action.0, obj.0
            ),
            SafetyViolation::VersionRegression { repo, count } => {
                write!(f, "version regression on repo {repo} ({count} observed)")
            }
            SafetyViolation::EpochRegression { repo, count } => {
                write!(f, "epoch regression on repo {repo} ({count} observed)")
            }
            SafetyViolation::CheckpointDivergence { repo_a, repo_b, obj } => write!(
                f,
                "checkpoints diverge between repos {repo_a} and {repo_b} on obj {}",
                obj.0
            ),
        }
    }
}

/// The oracle's verdict on one run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SafetyReport {
    violations: Vec<SafetyViolation>,
}

impl SafetyReport {
    /// Whether every property held.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violations found, in check order.
    pub fn violations(&self) -> &[SafetyViolation] {
        &self.violations
    }
}

impl fmt::Display for SafetyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ok() {
            return write!(f, "safety oracle: OK");
        }
        writeln!(f, "safety oracle: {} violation(s)", self.violations.len())?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

impl<S: Classified + Enumerable> RunReport<S> {
    /// Runs the full safety oracle over this run (see the module docs for
    /// the checked properties). `bounds` limit the serializability search
    /// exactly as in [`RunReport::check_atomicity`].
    pub fn safety(&self, bounds: ExploreBounds) -> SafetyReport {
        self.safety_gated(bounds, true)
    }

    /// The oracle with the atomicity family optionally disabled. The
    /// explorer audits *prefixes* of runs, where the lost-write,
    /// monotonicity, and nesting checks are sound at any commit boundary
    /// (a sound protocol commits only after a final quorum acknowledged,
    /// so the entries must already be on disk), but the serializability
    /// check is only meaningful once every transaction has decided — a
    /// committed read of a still-pending write is not yet a violation.
    pub(crate) fn safety_gated(
        &self,
        bounds: ExploreBounds,
        check_atomicity: bool,
    ) -> SafetyReport {
        let mut violations = Vec::new();

        // 1. Atomicity, per object.
        if check_atomicity {
            for obj in self.objects() {
                let h = self.history(*obj);
                if !history::satisfies::<S>(self.protocol().mode, &h, bounds) {
                    violations.push(SafetyViolation::NonAtomic { obj: *obj });
                }
            }
        }

        // 2. No committed write lost.
        let mut committed: BTreeSet<ActionId> = BTreeSet::new();
        let mut expected: BTreeMap<(ActionId, ObjId), u32> = BTreeMap::new();
        for (_, records, _) in self.clients() {
            for r in records {
                match r {
                    Record::Commit { action, .. } => {
                        committed.insert(*action);
                    }
                    Record::Op { action, obj, .. } => {
                        *expected.entry((*action, *obj)).or_default() += 1;
                    }
                    _ => {}
                }
            }
        }
        for ((action, obj), want) in &expected {
            if !committed.contains(action) {
                continue;
            }
            let mut seen: BTreeSet<Timestamp> = BTreeSet::new();
            let mut covered = false;
            for repo in self.repo_state() {
                let Some((_, log)) = repo.iter().find(|(o, _)| o == obj) else {
                    continue;
                };
                covered |= log
                    .checkpoint()
                    .is_some_and(|cp| cp.covers(*action).is_some());
                for e in log.entries().filter(|e| e.action == *action) {
                    seen.insert(e.ts);
                }
            }
            let found = seen.len() as u32;
            if !covered && found < *want {
                violations.push(SafetyViolation::LostWrite {
                    action: *action,
                    obj: *obj,
                    expected: *want,
                    found,
                });
            }
        }

        // 3. Version/epoch monotonicity per site.
        for (repo, c) in self.repo_counters().iter().enumerate() {
            if c.version_regressions > 0 {
                violations.push(SafetyViolation::VersionRegression {
                    repo: repo as u32,
                    count: c.version_regressions,
                });
            }
            if c.config_regressions > 0 {
                violations.push(SafetyViolation::EpochRegression {
                    repo: repo as u32,
                    count: c.config_regressions,
                });
            }
        }

        // 4. Checkpoint nesting, pairwise per object.
        for obj in self.objects() {
            let cps: Vec<(u32, &BTreeMap<ActionId, Timestamp>)> = self
                .repo_state()
                .iter()
                .enumerate()
                .filter_map(|(repo, state)| {
                    state
                        .iter()
                        .find(|(o, _)| o == obj)
                        .and_then(|(_, log)| log.checkpoint())
                        .map(|cp| (repo as u32, cp.covered()))
                })
                .collect();
            for (i, (repo_a, a)) in cps.iter().enumerate() {
                for (repo_b, b) in &cps[i + 1..] {
                    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
                    let nested = small.iter().all(|(k, v)| large.get(k) == Some(v));
                    if !nested {
                        violations.push(SafetyViolation::CheckpointDivergence {
                            repo_a: *repo_a,
                            repo_b: *repo_b,
                            obj: *obj,
                        });
                    }
                }
            }
        }

        SafetyReport { violations }
    }
}
