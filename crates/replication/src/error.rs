//! Errors a cluster run can report before it starts.
//!
//! Mis-configuration used to panic inside the builder; the
//! [`RunBuilder`](crate::cluster::RunBuilder) surfaces it as a value so
//! experiment harnesses can sweep configurations and skip invalid ones.

use std::fmt;

/// Why a configured run could not be started.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicationError {
    /// No concurrency-control protocol was configured.
    MissingProtocol,
    /// The quorum thresholds violate the protocol's dependency relation —
    /// running them would silently produce non-atomic histories, which is
    /// precisely what the paper's constraints exist to prevent.
    InvalidThresholds(String),
    /// The network configuration is inconsistent.
    InvalidNetwork {
        /// Configured minimum delay.
        min_delay: u64,
        /// Configured maximum delay (smaller than the minimum).
        max_delay: u64,
    },
    /// A network fault probability is outside `[0, 1]` — the chaos layer
    /// cannot interpret it as a per-message coin flip.
    InvalidChaosProfile(String),
    /// The workload is empty — there is nothing to run.
    EmptyWorkload,
    /// An operation carried a configuration version older than the
    /// current one — the transaction must abort and retry under the
    /// adopted configuration (§ reconfiguration).
    StaleEpoch {
        /// The version the operation carried.
        seen: u64,
        /// The version actually current.
        current: u64,
    },
    /// A reconfiguration schedule is malformed (empty membership, members
    /// outside the cluster, non-increasing epochs or times, thresholds
    /// sized for a different membership).
    InvalidReconfig(String),
    /// A [`RunBuilder`](crate::cluster::RunBuilder) feature is not
    /// supported by the selected execution backend (e.g. injected fault
    /// plans under the real-concurrency channels backend).
    Unsupported(String),
}

impl fmt::Display for ReplicationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicationError::MissingProtocol => write!(f, "protocol required"),
            ReplicationError::InvalidThresholds(detail) => {
                write!(
                    f,
                    "quorum thresholds violate the dependency relation: {detail}"
                )
            }
            ReplicationError::InvalidNetwork {
                min_delay,
                max_delay,
            } => write!(
                f,
                "invalid network config: min_delay {min_delay} > max_delay {max_delay}"
            ),
            ReplicationError::InvalidChaosProfile(detail) => {
                write!(f, "invalid chaos profile: {detail}")
            }
            ReplicationError::EmptyWorkload => write!(f, "workload is empty"),
            ReplicationError::StaleEpoch { seen, current } => write!(
                f,
                "stale configuration: operation saw version {seen}, current is {current}"
            ),
            ReplicationError::Unsupported(detail) => {
                write!(f, "unsupported backend feature: {detail}")
            }
            ReplicationError::InvalidReconfig(detail) => {
                write!(f, "invalid reconfiguration schedule: {detail}")
            }
        }
    }
}

impl std::error::Error for ReplicationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_problem() {
        assert_eq!(
            ReplicationError::MissingProtocol.to_string(),
            "protocol required"
        );
        assert!(
            ReplicationError::InvalidThresholds("Deq needs ti+tf > n".into())
                .to_string()
                .contains("violate the dependency relation")
        );
        assert!(ReplicationError::InvalidNetwork {
            min_delay: 9,
            max_delay: 2
        }
        .to_string()
        .contains("min_delay 9 > max_delay 2"));
        assert!(ReplicationError::StaleEpoch {
            seen: 3,
            current: 5
        }
        .to_string()
        .contains("saw version 3, current is 5"));
        assert!(ReplicationError::InvalidReconfig("epoch 2 before 1".into())
            .to_string()
            .contains("invalid reconfiguration schedule"));
    }
}
