//! The three concurrency-control protocols, as pure functions over a
//! merged log view — the front-end's step 3 ("if the view indicates that
//! no synchronization conflicts exist, … chooses a response legal for the
//! view", §3.2).
//!
//! | Mode | Serialization order | Conflict discipline |
//! |------|--------------------|---------------------|
//! | `StaticTs` | Begin timestamps | Reed-style: abort when a dependency-related entry is uncommitted or later-timestamped |
//! | `Hybrid` | Commit timestamps | dependency-related tentative entries act as locks |
//! | `Dynamic2pl` | Commit order (≡ precedes) | non-commutation (`≥D`) tentative entries act as locks |
//!
//! All three use the same rule against a foreign entry `e`:
//! **conflict iff `rel(my_op, class(e))`** where `rel` is a verified
//! dependency relation for the mode's atomicity property. Theorem 6's two
//! interference conditions both contribute the pair in that orientation,
//! so the one-directional check is sound; the clause machinery in
//! `quorumcc-core` is what certifies `rel` covers every hazard.
//!
//! ## Pipelined reads
//!
//! The throughput engine's front-end overlaps initial-quorum reads for
//! *later* operations of a transaction with the write phases of earlier
//! ones (`TuningConfig::batch` sets the depth). That is compatible with
//! all three protocols because these functions are pure over the merged
//! view: what a read round does is *gather* a view, and views only grow
//! under merge. The front-end still **evaluates** operations strictly in
//! program order — [`Protocol::evaluate`] for op *k* runs only after ops
//! `0..k` have been evaluated and their tentative entries appended to
//! the views op *k* was merged against (the pipeline launches a read
//! early only when its object's shard is disjoint from every in-flight
//! or parked earlier op, so no same-object entry can be missed). An
//! early-gathered view is therefore the same view a sequential engine
//! would have gathered, possibly *minus* foreign entries that arrived in
//! the gap — and any such entry the view misses is caught where it is
//! authoritative: at the final quorum, where repositories validate the
//! write against reservations and report conflicts. Pipelining moves
//! message time around; the conflict arithmetic, and hence every
//! decision, is unchanged.

use crate::types::{ActionOutcome, LogEntry, ObjectLog};
use quorumcc_core::DependencyRelation;
use quorumcc_model::{ActionId, Classified, EventClass};
use quorumcc_sim::Timestamp;
use std::collections::BTreeSet;
use std::fmt;

/// Which local atomicity property the protocol implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Static atomicity: Reed-style Begin-timestamp ordering.
    StaticTs,
    /// Hybrid atomicity: commit-time timestamps plus dependency locks.
    Hybrid,
    /// Strong dynamic atomicity: strict two-phase locking on
    /// non-commuting operation classes.
    Dynamic2pl,
}

impl Mode {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Mode::StaticTs => "static",
            Mode::Hybrid => "hybrid",
            Mode::Dynamic2pl => "dynamic-2pl",
        }
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why an operation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// The action owning the conflicting entry.
    pub with: ActionId,
    /// The conflicting entry's event class.
    pub on: EventClass,
    /// What kind of hazard.
    pub reason: ConflictReason,
}

/// The hazard category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictReason {
    /// A dependency-related entry of another active action (a held lock).
    Lock,
    /// Static mode: a dependency-related entry with a later Begin
    /// timestamp already exists — this operation arrived too late.
    TooLate,
    /// Static mode: a dependency-related earlier entry is still
    /// uncommitted.
    DirtyPast,
}

impl fmt::Display for Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = match self.reason {
            ConflictReason::Lock => "lock held",
            ConflictReason::TooLate => "too late",
            ConflictReason::DirtyPast => "uncommitted dependency",
        };
        write!(f, "{r}: {} by {}", self.on, self.with)
    }
}

/// A concurrency-control protocol: a mode plus the dependency relation it
/// enforces (which must be a verified dependency relation for the mode's
/// atomicity property — `≥S` for static, `≥D` for dynamic, any verified
/// hybrid relation for hybrid).
#[derive(Debug, Clone)]
pub struct Protocol {
    /// The atomicity property implemented.
    pub mode: Mode,
    /// The dependency/conflict relation.
    pub rel: DependencyRelation,
}

impl Protocol {
    /// Builds a protocol.
    pub fn new(mode: Mode, rel: DependencyRelation) -> Self {
        Protocol { mode, rel }
    }

    /// The transitive closure of event classes an invocation of `op` must
    /// observe: its direct dependencies, their operations' dependencies,
    /// and so on. The §3.2 log-propagation argument guarantees these reach
    /// the view through quorum intersections.
    pub fn closure_classes(&self, op: &'static str) -> BTreeSet<EventClass> {
        let mut out: BTreeSet<EventClass> = self
            .rel
            .iter()
            .filter(|(i, _)| *i == op)
            .map(|(_, e)| *e)
            .collect();
        loop {
            let next: Vec<EventClass> = out
                .iter()
                .flat_map(|c| {
                    self.rel
                        .iter()
                        .filter(move |(i, _)| *i == c.op)
                        .map(|(_, e)| *e)
                })
                .collect();
            let before = out.len();
            out.extend(next);
            if out.len() == before {
                return out;
            }
        }
    }

    /// Evaluates invocation `inv` of `action` (begun at `begin_ts`)
    /// against the merged quorum view `log` plus the action's `own`
    /// previous entries, returning the response the front-end should give.
    ///
    /// # Errors
    ///
    /// Returns a [`Conflict`] when the mode's discipline refuses the
    /// operation (the transaction should abort or retry).
    pub fn evaluate<S: Classified>(
        &self,
        log: &ObjectLog<S::Inv, S::Res>,
        own: &[LogEntry<S::Inv, S::Res>],
        action: ActionId,
        begin_ts: Timestamp,
        inv: &S::Inv,
    ) -> Result<S::Res, Conflict> {
        let op = S::op_class(inv);
        let closure = self.closure_classes(op);

        // Replay set: (sort key, entry). Foreign committed entries are
        // ordered by the mode's serialization timestamp; own entries are
        // replayed at the position the mode serializes *this* action.
        #[allow(clippy::type_complexity)]
        let mut replay: Vec<((u8, Timestamp, Timestamp), &LogEntry<S::Inv, S::Res>)> = Vec::new();

        for e in log.entries() {
            if e.action == action {
                continue; // own entries come from `own` (authoritative)
            }
            let class = S::event_class(&e.event.inv, &e.event.res);
            let related = self.rel.contains(op, class);
            match (self.mode, log.status(e.action)) {
                (_, ActionOutcome::Aborted) => {}
                (Mode::StaticTs, status) => {
                    if e.begin_ts > begin_ts {
                        // Serialized after me: never in my replay; if
                        // dependency-related, my insertion before it is the
                        // Theorem-6 interference — refuse.
                        if related {
                            return Err(Conflict {
                                with: e.action,
                                on: class,
                                reason: ConflictReason::TooLate,
                            });
                        }
                    } else if status.is_resolved() {
                        // Committed, serialized before me.
                        if closure.contains(&class) {
                            replay.push(((0, e.begin_ts, e.ts), e));
                        }
                    } else if related {
                        // Uncommitted earlier dependency: Reed would block;
                        // we abort (conservative, non-blocking).
                        return Err(Conflict {
                            with: e.action,
                            on: class,
                            reason: ConflictReason::DirtyPast,
                        });
                    }
                }
                (Mode::Hybrid | Mode::Dynamic2pl, ActionOutcome::Committed(cts)) => {
                    if closure.contains(&class) {
                        replay.push(((0, cts, e.ts), e));
                    }
                }
                (Mode::Hybrid | Mode::Dynamic2pl, ActionOutcome::Active) => {
                    if related {
                        // A dependency-related tentative entry is a held
                        // lock.
                        return Err(Conflict {
                            with: e.action,
                            on: class,
                            reason: ConflictReason::Lock,
                        });
                    }
                }
            }
        }

        for e in own {
            let key = match self.mode {
                // Static: my events sit at my Begin position.
                Mode::StaticTs => (0, begin_ts, e.ts),
                // Hybrid/dynamic: I will commit after everything committed
                // in my view.
                Mode::Hybrid | Mode::Dynamic2pl => (1, e.ts, e.ts),
            };
            replay.push((key, e));
        }

        replay.sort_by_key(|a| a.0);
        // A compacted view replays from the checkpoint's state for this op
        // class: the fold of the covered committed prefix restricted to
        // `op`'s closure — exactly what the dropped entries would have
        // contributed here. Folds only cover commit timestamps below every
        // surviving entry's serialization position, so "checkpoint first,
        // then the replay set" is the same order the raw log would sort.
        let mut state = log
            .checkpoint()
            .and_then(|cp| cp.state_as::<std::collections::BTreeMap<&'static str, S::State>>())
            .and_then(|m| m.get(op).cloned())
            .unwrap_or_else(S::initial);
        for (_, e) in &replay {
            let (_res, next) = S::apply(&state, &e.event.inv);
            state = next;
        }
        Ok(S::apply(&state, inv).0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::entry_of;
    use quorumcc_core::certificates::prom_hybrid_relation;
    use quorumcc_core::minimal_static_relation;
    use quorumcc_model::spec::ExploreBounds;
    use quorumcc_model::testtypes::{QInv, QRes, TestQueue, TestRegister};

    fn ts(c: u64, n: u32) -> Timestamp {
        Timestamp {
            counter: c,
            node: n,
        }
    }

    fn queue_static() -> Protocol {
        Protocol::new(
            Mode::StaticTs,
            minimal_static_relation::<TestQueue>(ExploreBounds {
                depth: 4,
                ..ExploreBounds::default()
            })
            .relation,
        )
    }

    fn queue_hybrid() -> Protocol {
        // ≥S is a hybrid dependency relation for the queue (Theorem 4).
        Protocol::new(
            Mode::Hybrid,
            minimal_static_relation::<TestQueue>(ExploreBounds {
                depth: 4,
                ..ExploreBounds::default()
            })
            .relation,
        )
    }

    #[test]
    fn closure_reaches_transitive_dependencies() {
        let p = Protocol::new(Mode::Hybrid, prom_hybrid_relation());
        let read = p.closure_classes("Read");
        // Read ≥ Seal/Ok directly; Seal ≥ Write/Ok and Seal ≥ Read/Disabled
        // transitively.
        assert!(read.contains(&EventClass::new("Seal", "Ok")));
        assert!(read.contains(&EventClass::new("Write", "Ok")));
        assert!(read.contains(&EventClass::new("Read", "Disabled")));
        assert!(!read.contains(&EventClass::new("Read", "Ok")));
    }

    #[test]
    fn hybrid_replays_committed_in_commit_order() {
        let p = queue_hybrid();
        let mut log = ObjectLog::new();
        // Action A enqueues 1 (commit ts 10); B enqueues 2 (commit ts 5).
        log.insert(entry_of::<TestQueue>(
            ts(1, 0),
            ActionId(0),
            ts(1, 0),
            QInv::Enq(1),
            QRes::Ok,
        ));
        log.insert(entry_of::<TestQueue>(
            ts(2, 1),
            ActionId(1),
            ts(2, 1),
            QInv::Enq(2),
            QRes::Ok,
        ));
        log.resolve(ActionId(0), ActionOutcome::Committed(ts(10, 0)));
        log.resolve(ActionId(1), ActionOutcome::Committed(ts(5, 1)));
        // Commit order: B then A → queue [2, 1].
        let res = p
            .evaluate::<TestQueue>(&log, &[], ActionId(2), ts(20, 2), &QInv::Deq)
            .unwrap();
        assert_eq!(res, QRes::Item(2));
    }

    #[test]
    fn static_replays_in_begin_order() {
        let p = queue_static();
        let mut log = ObjectLog::new();
        // A began first (begin 1) but committed after B (begin 2).
        log.insert(entry_of::<TestQueue>(
            ts(3, 0),
            ActionId(0),
            ts(1, 0),
            QInv::Enq(1),
            QRes::Ok,
        ));
        log.insert(entry_of::<TestQueue>(
            ts(4, 1),
            ActionId(1),
            ts(2, 1),
            QInv::Enq(2),
            QRes::Ok,
        ));
        log.resolve(ActionId(0), ActionOutcome::Committed(ts(20, 0)));
        log.resolve(ActionId(1), ActionOutcome::Committed(ts(10, 1)));
        // Begin order: A then B → queue [1, 2].
        let res = p
            .evaluate::<TestQueue>(&log, &[], ActionId(2), ts(30, 2), &QInv::Deq)
            .unwrap();
        assert_eq!(res, QRes::Item(1));
    }

    #[test]
    fn tentative_dependency_is_a_lock_under_hybrid() {
        let p = queue_hybrid();
        let mut log = ObjectLog::new();
        log.insert(entry_of::<TestQueue>(
            ts(1, 0),
            ActionId(0),
            ts(1, 0),
            QInv::Enq(1),
            QRes::Ok,
        ));
        // A is active: its Enq blocks a Deq (Deq ≥ Enq/Ok)…
        let c = p
            .evaluate::<TestQueue>(&log, &[], ActionId(1), ts(5, 1), &QInv::Deq)
            .unwrap_err();
        assert_eq!(c.reason, ConflictReason::Lock);
        // …but not another Enq (no Enq ≥ Enq pair in ≥S).
        let r = p
            .evaluate::<TestQueue>(&log, &[], ActionId(1), ts(5, 1), &QInv::Enq(2))
            .unwrap();
        assert_eq!(r, QRes::Ok);
    }

    #[test]
    fn dynamic_locks_concurrent_enqueues() {
        let rel = quorumcc_core::minimal_dynamic_relation::<TestQueue>(ExploreBounds {
            depth: 4,
            ..ExploreBounds::default()
        })
        .relation;
        let p = Protocol::new(Mode::Dynamic2pl, rel);
        let mut log = ObjectLog::new();
        log.insert(entry_of::<TestQueue>(
            ts(1, 0),
            ActionId(0),
            ts(1, 0),
            QInv::Enq(1),
            QRes::Ok,
        ));
        // Enq ≥D Enq/Ok: a second concurrent enqueue conflicts.
        let c = p
            .evaluate::<TestQueue>(&log, &[], ActionId(1), ts(5, 1), &QInv::Enq(2))
            .unwrap_err();
        assert_eq!(c.reason, ConflictReason::Lock);
    }

    #[test]
    fn static_too_late_write_refused() {
        let rel = minimal_static_relation::<TestRegister>(ExploreBounds {
            depth: 4,
            ..ExploreBounds::default()
        })
        .relation;
        let p = Protocol::new(Mode::StaticTs, rel);
        let mut log = ObjectLog::new();
        // A committed Read with Begin ts 10.
        log.insert(entry_of::<TestRegister>(
            ts(11, 0),
            ActionId(0),
            ts(10, 0),
            None,
            0,
        ));
        log.resolve(ActionId(0), ActionOutcome::Committed(ts(12, 0)));
        // My Write began at 5 < 10: inserting it before the read would
        // invalidate it (Write ≥S Read/Ok).
        let c = p
            .evaluate::<TestRegister>(&log, &[], ActionId(1), ts(5, 1), &Some(7))
            .unwrap_err();
        assert_eq!(c.reason, ConflictReason::TooLate);
    }

    #[test]
    fn static_dirty_past_refused() {
        let rel = minimal_static_relation::<TestRegister>(ExploreBounds {
            depth: 4,
            ..ExploreBounds::default()
        })
        .relation;
        let p = Protocol::new(Mode::StaticTs, rel);
        let mut log = ObjectLog::new();
        // A (active) wrote at begin ts 5; my Read began at 10 and depends
        // on Write/Ok events.
        log.insert(entry_of::<TestRegister>(
            ts(6, 0),
            ActionId(0),
            ts(5, 0),
            Some(3),
            3,
        ));
        let c = p
            .evaluate::<TestRegister>(&log, &[], ActionId(1), ts(10, 1), &None)
            .unwrap_err();
        assert_eq!(c.reason, ConflictReason::DirtyPast);
    }

    #[test]
    fn own_entries_shape_the_response() {
        let p = queue_hybrid();
        let log = ObjectLog::new();
        let own = vec![entry_of::<TestQueue>(
            ts(2, 1),
            ActionId(1),
            ts(1, 1),
            QInv::Enq(7),
            QRes::Ok,
        )];
        let res = p
            .evaluate::<TestQueue>(&log, &own, ActionId(1), ts(1, 1), &QInv::Deq)
            .unwrap();
        assert_eq!(res, QRes::Item(7));
    }

    #[test]
    fn aborted_entries_are_invisible() {
        let p = queue_hybrid();
        let mut log = ObjectLog::new();
        log.insert(entry_of::<TestQueue>(
            ts(1, 0),
            ActionId(0),
            ts(1, 0),
            QInv::Enq(1),
            QRes::Ok,
        ));
        log.resolve(ActionId(0), ActionOutcome::Aborted);
        let res = p
            .evaluate::<TestQueue>(&log, &[], ActionId(1), ts(5, 1), &QInv::Deq)
            .unwrap();
        assert_eq!(res, QRes::Empty);
    }

    #[test]
    fn closure_filtering_keeps_replay_legal() {
        // A PROM Read's view excludes foreign Read/Ok entries (not in its
        // closure), so a stray Read/Ok from a class it cannot interpret
        // does not disturb the replay.
        use quorumcc_adts::prom::{PromInv, PromRes};
        let p = Protocol::new(Mode::Hybrid, prom_hybrid_relation());
        let mut log = ObjectLog::new();
        log.insert(entry_of::<quorumcc_adts::Prom>(
            ts(1, 0),
            ActionId(0),
            ts(1, 0),
            PromInv::Write(9),
            PromRes::Ok,
        ));
        log.insert(entry_of::<quorumcc_adts::Prom>(
            ts(2, 0),
            ActionId(0),
            ts(1, 0),
            PromInv::Seal,
            PromRes::Ok,
        ));
        log.resolve(ActionId(0), ActionOutcome::Committed(ts(3, 0)));
        let res = p
            .evaluate::<quorumcc_adts::Prom>(&log, &[], ActionId(1), ts(5, 1), &PromInv::Read)
            .unwrap();
        assert_eq!(res, PromRes::Item(9));
    }
}
