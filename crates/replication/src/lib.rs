//! Quorum-consensus replication of typed objects (§3.2 of the paper),
//! over the deterministic simulator.
//!
//! The architecture follows the paper exactly:
//!
//! * **Repositories** ([`repository`]) store partially-replicated
//!   timestamped logs ([`types`]).
//! * **Front-ends** (embedded in [`client`]) execute an invocation by
//!   merging the logs of an *initial quorum* into a view, running the
//!   concurrency-control discipline ([`protocol`]), choosing a response
//!   legal for the view, appending a freshly stamped entry, and writing
//!   the updated view to a *final quorum*.
//! * **Three concurrency-control protocols** implement the three local
//!   atomicity properties the paper compares: `StaticTs` (Reed-style
//!   timestamping), `Hybrid` (commit-time timestamps + dependency locks),
//!   and `Dynamic2pl` (two-phase locking on non-commuting classes).
//! * Every run captures the global behavioral history per object
//!   ([`history`]); tests feed them back into `quorumcc-model`'s
//!   atomicity checkers — replication and the theory validate each other.
//! * **Online reconfiguration** ([`reconfig`]): epoch-stamped
//!   configurations installed through a joint phase, with stale-epoch
//!   refusal and free client retries — quorum assignments can follow
//!   availability as sites fail.
//! * **Chaos layer** ([`chaos`], [`oracle`]): lossy/duplicating/
//!   reordering networks, volatile-crash recovery with a write-ahead
//!   mirror ([`repository::Durability`]), and an online safety oracle
//!   auditing every run for atomicity, lost writes, version/epoch
//!   monotonicity, and checkpoint nesting — plus a deterministic fuzz
//!   driver that shrinks failures to minimal reproducing plans.
//!
//! Substitutions vs. the paper's setting (see DESIGN.md): real sites and
//! networks become the deterministic DES of `quorumcc-sim`; the atomic
//! commitment protocol is a coordinator broadcast with gossip-carried
//! resolutions (commit protocols are orthogonal to the paper's analysis);
//! blocking lock waits are replaced by abort-and-retry (deadlock-free, and
//! the abort *rate* is itself one of the measured quantities).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod chaos;
pub mod client;
pub mod cluster;
pub mod driver;
pub mod error;
pub mod explore;
pub mod history;
pub mod messages;
pub mod metrics;
pub mod oracle;
pub mod protocol;
pub mod reconfig;
pub mod repository;
mod spec;
pub mod types;
pub mod workload;

pub use backend::BackendKind;
pub use chaos::{ChaosConfig, ChaosOutcome, ChaosPlan, ChaosProfile, ProfileStats};
pub use client::{Client, ClientConfig, ClientStats, Fanout, Transaction};
pub use cluster::{Node, ProtocolConfig, RunBuilder, RunReport, TuningConfig};
pub use driver::{CollectIo, DesAdapter, Driver, Input, Io, Output};
pub use error::ReplicationError;
pub use explore::{ExploreReplay, ExploreSetup, ExploreSpec, Knob};
pub use messages::Msg;
pub use metrics::{ClientMetrics, LogicalHistogram, RunTelemetry};
pub use oracle::{SafetyReport, SafetyViolation};
pub use protocol::{Conflict, ConflictReason, Mode, Protocol};
pub use reconfig::{Config, ConfigState, ReconfigPolicy, ReconfigRecord, Reconfigurer};
pub use repository::{Durability, RepoCounters, Repository};
pub use types::{
    ActionOutcome, Checkpoint, CompactionConfig, LogDelta, LogEntry, ObjId, ObjectLog, VersionedLog,
};
