//! The wire protocol between front-ends and repositories, plus the
//! [`Batcher`] that coalesces per-destination traffic into
//! [`Msg::Batch`] envelopes.

use crate::driver::Io;
use crate::reconfig::ConfigState;
use crate::types::{ActionOutcome, LogDelta, LogEntry, ObjId, ObjectLog};
use quorumcc_model::ActionId;
use quorumcc_sim::{ProcId, Timestamp, TraceAction};
use std::collections::BTreeMap;

/// Messages exchanged in a cluster. `I`/`R` are the data type's invocation
/// and response types.
///
/// Quorum-bearing messages carry `cfg`, the configuration *version* the
/// sender believed current (see [`ConfigState::version`]); repositories
/// refuse older versions with [`Msg::StaleConfig`] so front-ends learn of
/// reconfigurations they missed.
#[derive(Debug, Clone)]
pub enum Msg<I, R> {
    /// Front-end → repository: send me your log for `obj`, recording a
    /// **read reservation** for (`action`, `op`) — the read-lock half of
    /// the concurrency control, held until the action resolves.
    ReadLog {
        /// Target object.
        obj: ObjId,
        /// Request id for matching replies.
        req: u64,
        /// The reading action.
        action: ActionId,
        /// Its Begin timestamp (static mode compares reservation ages).
        begin_ts: Timestamp,
        /// The invocation's operation class.
        op: &'static str,
        /// The sender's configuration version.
        cfg: u64,
        /// The sender's known frontier for this site's log (the version of
        /// the last delta it received); the repository ships only the
        /// suffix past it. `0` requests a full transfer.
        since: u64,
        /// The sender's durable resolution frontier, as a *count* of
        /// contiguously acknowledged sequence numbers from 0: every one
        /// of its actions with sequence number < `durable` is resolved
        /// and the resolution was acknowledged by every current member
        /// ([`Msg::ResolveAck`]). Piggybacked on existing read traffic so
        /// repositories can garbage-collect status tombstones below it.
        /// `0` (the default when status GC is off) promises nothing —
        /// count semantics keep "nothing acked" distinguishable from
        /// "sequence 0 acked", so a client's first action is collectable
        /// like any other.
        durable: u64,
    },
    /// Repository → front-end: the suffix of my log past your frontier
    /// (or a full checkpoint-rooted transfer when the frontier fell off
    /// the change journal).
    LogReply {
        /// Target object.
        obj: ObjId,
        /// Request id echoed.
        req: u64,
        /// The missing changes.
        delta: LogDelta<I, R>,
    },
    /// Front-end → repository: merge this view (the §3.2 "send the updated
    /// view to a final quorum"). The freshly appended entry rides
    /// separately so the repository can validate it against reservations.
    WriteLog {
        /// Target object.
        obj: ObjId,
        /// Request id for matching acks.
        req: u64,
        /// The updated view.
        log: ObjectLog<I, R>,
        /// The new entry to validate (`None` for pure propagation).
        entry: Option<LogEntry<I, R>>,
        /// The sender's configuration version (only enforced when `entry`
        /// is present — pure propagation is a CRDT-safe merge).
        cfg: u64,
    },
    /// Repository → front-end: view merged durably; `conflict` reports a
    /// reservation by another action that depends on the new entry's
    /// class — the writer must abort.
    WriteAck {
        /// Target object.
        obj: ObjId,
        /// Request id echoed.
        req: u64,
        /// A conflicting reader, if any.
        conflict: Option<ActionId>,
    },
    /// Coordinator → repositories: an action resolved (commit/abort).
    /// Fire-and-forget; resolutions also gossip through merged views.
    Resolve {
        /// The resolved action.
        action: ActionId,
        /// Its outcome.
        outcome: ActionOutcome,
        /// On commit: the action's write manifest — how many entries it
        /// appended per object. A repository may fold a committed action
        /// into a checkpoint only once it holds *all* of the action's
        /// entries for that object; the manifest is how it knows.
        entries: Vec<(ObjId, u32)>,
    },
    /// Repository → coordinator: I durably recorded this resolution.
    /// Sent only when status GC is enabled; once the coordinator holds an
    /// ack from *every* current member, the resolution is globally known
    /// and its tombstones become collectable (advertised through the
    /// `durable` frontier on [`Msg::ReadLog`]).
    ResolveAck {
        /// The acknowledged action.
        action: ActionId,
    },
    /// Reconfigurer → repository: adopt this configuration state if it is
    /// newer than yours.
    Install {
        /// Request id for matching acks.
        req: u64,
        /// The state to adopt.
        state: ConfigState,
    },
    /// Repository → reconfigurer: my configuration version after
    /// processing your install.
    InstallAck {
        /// Request id echoed.
        req: u64,
        /// The repository's (possibly newer) version.
        version: u64,
    },
    /// Repository → repository: a recovering site asks a peer for a state
    /// transfer. The peer answers with one entry-less [`Msg::WriteLog`]
    /// per object it stores (the same CRDT-safe merges anti-entropy uses),
    /// so a volatile site that lost its in-memory state catches back up
    /// without waiting for a gossip round.
    SyncReq,
    /// Repository → front-end: your request carried a stale configuration
    /// version; here is the current state. The front-end adopts it, aborts
    /// the affected transaction, and retries under the new configuration.
    StaleConfig {
        /// The refused request id.
        req: u64,
        /// The repository's current configuration state.
        state: ConfigState,
    },
    /// A batch envelope: several payloads for one destination, coalesced
    /// by a [`Batcher`] into a single network message. Receivers unwrap
    /// and handle the payloads in order; the network charges one delay
    /// and one loss draw for the whole envelope.
    Batch(Vec<Msg<I, R>>),
}

/// Per-destination send coalescing — the batching half of the throughput
/// engine.
///
/// A process routes batchable sends through [`Batcher::push`] instead of
/// `ctx.send`, and calls [`Batcher::flush`] before returning from each
/// event handler. Queued payloads for the same destination leave as one
/// [`Msg::Batch`] envelope (a queue of one leaves as the raw message, so
/// a batch size of 1 is byte-identical to not batching at all).
///
/// Determinism: queues live in a `BTreeMap` keyed by destination, so the
/// flush order is the destination order — a pure function of what was
/// pushed, never of hash state or wall-clock. The `cap` bound flushes a
/// destination's queue early once it holds `cap` payloads, keeping
/// envelope sizes bounded by the configured batch size.
#[derive(Debug, Default, Clone)]
pub struct Batcher<I, R> {
    queues: BTreeMap<ProcId, Vec<Msg<I, R>>>,
    cap: usize,
    flushed: u64,
    fills: Vec<u64>,
}

impl<I, R> Batcher<I, R> {
    /// A batcher flushing any destination queue that reaches `cap`
    /// payloads (`cap = 0` or 1 means every push flushes immediately —
    /// the unbatched degenerate case).
    pub fn new(cap: usize) -> Self {
        Batcher {
            queues: BTreeMap::new(),
            cap: cap.max(1),
            flushed: 0,
            fills: Vec::new(),
        }
    }

    /// Queues one payload for `to`, flushing that destination's queue if
    /// it reached the cap.
    pub fn push<IO: Io<Msg<I, R>> + ?Sized>(&mut self, ctx: &mut IO, to: ProcId, msg: Msg<I, R>) {
        let queue = self.queues.entry(to).or_default();
        queue.push(msg);
        if queue.len() >= self.cap {
            let batch = std::mem::take(queue);
            self.emit(ctx, to, batch);
        }
    }

    /// Flushes every queued destination, in destination order. Call at
    /// the end of each event handler: the flush boundary is the event,
    /// which is deterministic at any `--threads` count.
    pub fn flush<IO: Io<Msg<I, R>> + ?Sized>(&mut self, ctx: &mut IO) {
        let queues = std::mem::take(&mut self.queues);
        for (to, batch) in queues {
            if batch.is_empty() {
                continue;
            }
            self.emit(ctx, to, batch);
        }
    }

    fn emit<IO: Io<Msg<I, R>> + ?Sized>(
        &mut self,
        ctx: &mut IO,
        to: ProcId,
        mut batch: Vec<Msg<I, R>>,
    ) {
        let len = batch.len() as u64;
        self.flushed += 1;
        self.fills.push(len);
        if ctx.tracing() {
            ctx.trace(TraceAction::BatchFlush { to, len });
        }
        if batch.len() == 1 {
            ctx.send(to, batch.pop().expect("non-empty batch"));
        } else {
            ctx.send_weighted(to, Msg::Batch(batch), len);
        }
    }

    /// Envelopes emitted so far (singleton flushes included).
    pub fn flushed(&self) -> u64 {
        self.flushed
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queues.values().all(Vec::is_empty)
    }

    /// Drains the per-envelope payload counts recorded so far.
    pub fn take_fills(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.fills)
    }
}
