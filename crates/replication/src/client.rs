//! Clients with embedded front-ends: the §3.2 execution loop as a
//! message-driven state machine.
//!
//! Each operation runs in two quorum phases: **read** — collect logs from
//! an initial quorum and merge them into a view — and **write** — append
//! the freshly stamped entry and push the updated view to a final quorum.
//! Transactions commit by broadcasting a `Resolve` with a commit-time
//! Lamport timestamp (resolutions also gossip through later view writes,
//! so a lost broadcast only delays, never corrupts).
//!
//! Timestamps use the simulated time as the Lamport counter (physical
//! clocks are a valid Lamport implementation), which makes the captured
//! history's commit order coincide with commit-timestamp order — exactly
//! the "unambiguous ordering on Begin and Commit events" the paper
//! assumes.

use crate::messages::Msg;
use crate::metrics::ClientMetrics;
use crate::protocol::{ConflictReason, Protocol};
use crate::reconfig::ConfigState;
use crate::types::{ActionOutcome, LogEntry, ObjId, ObjectLog, VersionedLog};
use quorumcc_model::{ActionId, Classified, Event};
use quorumcc_quorum::ThresholdAssignment;
use quorumcc_sim::trace::{AbortCause, ConflictKind, PhaseKind, TraceAction};
use quorumcc_sim::{Ctx, ProcId, SimTime, Timestamp};
use std::collections::{BTreeMap, HashSet};

/// A transaction: a sequence of operations on replicated objects.
#[derive(Debug, Clone)]
pub struct Transaction<I> {
    /// The operations, in order.
    pub ops: Vec<(ObjId, I)>,
}

/// What a client records for history reconstruction.
#[derive(Debug, Clone)]
pub enum Record<I, R> {
    /// An action began.
    Begin {
        /// Event time (= Begin timestamp counter).
        t: SimTime,
        /// The action.
        action: ActionId,
    },
    /// An operation completed (final quorum acknowledged).
    Op {
        /// Completion time.
        t: SimTime,
        /// The executing action.
        action: ActionId,
        /// The object operated on.
        obj: ObjId,
        /// The observed event.
        event: Event<I, R>,
    },
    /// The action committed.
    Commit {
        /// Commit time (= commit timestamp counter).
        t: SimTime,
        /// The action.
        action: ActionId,
    },
    /// The action aborted.
    Abort {
        /// Abort time.
        t: SimTime,
        /// The action.
        action: ActionId,
    },
}

/// Client-side outcome counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Transactions committed.
    pub committed: usize,
    /// Transactions aborted on a concurrency conflict.
    pub aborted_conflict: usize,
    /// Transactions aborted because a quorum was unreachable.
    pub aborted_unavailable: usize,
    /// Individual operations completed.
    pub ops_completed: usize,
    /// Transactions aborted on a stale configuration epoch and retried
    /// under the adopted one (these do not consume the retry budget and
    /// are not counted as conflict or unavailability aborts).
    pub stale_retries: usize,
}

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// The concurrency-control protocol.
    pub protocol: Protocol,
    /// Quorum thresholds (validated against the protocol's relation by the
    /// cluster builder).
    pub thresholds: ThresholdAssignment,
    /// Repository process ids.
    pub repos: Vec<ProcId>,
    /// Per-phase timeout before a retry.
    pub op_timeout: SimTime,
    /// Phase retries before declaring the quorum unavailable.
    pub max_phase_retries: u32,
    /// Idle time between transactions.
    pub think_time: SimTime,
    /// Delay between the last operation completing and the commit decision
    /// (models atomic-commitment latency; 0 = commit immediately).
    pub commit_delay: SimTime,
    /// How many times to re-run an aborted transaction (each attempt is a
    /// fresh action).
    pub txn_retries: u32,
    /// Whether final-quorum writes carry the whole merged view (§3.2's
    /// algorithm) or only the fresh entry. Disabling this is an ablation:
    /// transitive dependencies (a PROM `Read` learning of `Write`s through
    /// the `Seal` entry) stop working, and minimal quorum assignments
    /// become observably unsound.
    pub propagate_views: bool,
    /// Quorum fan-out policy.
    pub fanout: Fanout,
    /// Delta log shipping: piggyback per-site known frontiers on
    /// `ReadLog` so repositories ship only the missing suffix, mirrored
    /// locally per (object, site). Disabling reverts to full-log replies
    /// (the shipping ablation/baseline).
    pub delta_shipping: bool,
    /// Whether the cluster runs committed-prefix compaction (mirrors then
    /// garbage-collect aborted entries the same way repositories do).
    pub compact_logs: bool,
    /// Test-only fault injection for the safety oracle's self-test:
    /// assemble every initial view from one repository too few (and count
    /// one phantom reply toward the quorum check), silently weakening the
    /// `ti + tf > n` intersection by one site. Runs with this enabled
    /// produce histories the oracle must flag; never enable it outside
    /// tests.
    pub weaken_read_quorum: bool,
}

/// How a front-end selects the repositories it contacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fanout {
    /// Contact every repository, count the first quorum of replies. Extra
    /// replicas receive the data too (maximum redundancy).
    Broadcast,
    /// Contact exactly a quorum-sized, per-request-rotating subset
    /// (load-optimized preferred quorums); timeouts fall back to
    /// broadcast. This is the configuration under which quorum sizes are
    /// exactly what lands on disk — used by the propagation ablation.
    Narrow,
}

const TOKEN_KICK: u64 = 0;
const TOKEN_COMMIT: u64 = u64::MAX;

impl<I, R> Phase<I, R> {
    /// The request id of the in-flight quorum phase.
    fn req(&self) -> u64 {
        match self {
            Phase::Reading { req, .. } | Phase::Writing { req, .. } => *req,
        }
    }
}

#[derive(Debug)]
enum Phase<I, R> {
    Reading {
        req: u64,
        obj: ObjId,
        inv: I,
        merged: ObjectLog<I, R>,
        replied: HashSet<ProcId>,
        retries: u32,
        since: SimTime,
    },
    Writing {
        req: u64,
        obj: ObjId,
        event: Event<I, R>,
        view: ObjectLog<I, R>,
        entry: LogEntry<I, R>,
        acks: HashSet<ProcId>,
        retries: u32,
        since: SimTime,
    },
}

#[derive(Debug)]
struct Txn<I, R> {
    action: ActionId,
    begin_ts: Timestamp,
    op_idx: usize,
    op_started: SimTime,
    own: BTreeMap<ObjId, Vec<LogEntry<I, R>>>,
    phase: Option<Phase<I, R>>,
    attempts_left: u32,
}

/// A client process driving transactions through its embedded front-end.
#[derive(Debug)]
pub struct Client<S: Classified> {
    cfg: ClientConfig,
    txns: Vec<Transaction<S::Inv>>,
    cursor: usize,
    action_seq: u32,
    current: Option<Txn<S::Inv, S::Res>>,
    records: Vec<Record<S::Inv, S::Res>>,
    stats: ClientStats,
    metrics: ClientMetrics,
    req_counter: u64,
    last_counter: u64,
    known: BTreeMap<ActionId, ActionOutcome>,
    retry_pending: Option<u32>,
    /// Per-(object, site) mirrors of repository logs, advanced by applying
    /// the deltas in `LogReply`. A mirror equals the site's log as of the
    /// last reply received; its version is the frontier piggybacked on the
    /// next `ReadLog` to that site.
    mirrors: BTreeMap<(ObjId, ProcId), VersionedLog<S::Inv, S::Res>>,
    /// The configuration this front-end currently believes governs: quorum
    /// counting and fan-out follow it, and every quorum-bearing message
    /// carries its version. Updated when a repository bounces a request
    /// with [`Msg::StaleConfig`].
    config: ConfigState,
}

impl<S: Classified> Client<S> {
    /// Builds a client that will run `txns` under `cfg`, starting from the
    /// epoch-0 configuration (all of `cfg.repos` with `cfg.thresholds`).
    pub fn new(cfg: ClientConfig, txns: Vec<Transaction<S::Inv>>) -> Self {
        let config = ConfigState::bootstrap(cfg.repos.iter().copied(), cfg.thresholds.clone());
        Client {
            cfg,
            txns,
            cursor: 0,
            action_seq: 0,
            current: None,
            records: Vec::new(),
            stats: ClientStats::default(),
            metrics: ClientMetrics::default(),
            req_counter: 0,
            last_counter: 0,
            known: BTreeMap::new(),
            retry_pending: None,
            mirrors: BTreeMap::new(),
            config,
        }
    }

    /// The log-version frontier to piggyback on a `ReadLog` to `site`
    /// (0 = request a full transfer, also the delta-shipping-off value).
    fn frontier(&self, obj: ObjId, site: ProcId) -> u64 {
        if !self.cfg.delta_shipping {
            return 0;
        }
        self.mirrors
            .get(&(obj, site))
            .map_or(0, VersionedLog::version)
    }

    /// The records captured so far (for history assembly).
    pub fn records(&self) -> &[Record<S::Inv, S::Res>] {
        &self.records
    }

    /// Outcome counters.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Raw metric samples collected so far (latencies, retries, views).
    pub fn metrics(&self) -> &ClientMetrics {
        &self.metrics
    }

    /// The repositories to contact for a phase wanting `k` responses —
    /// drawn from the current configuration's membership (the union of
    /// both memberships while a reconfiguration is in flight).
    fn targets(&self, req: u64, k: u32, fallback: bool) -> Vec<ProcId> {
        let members = self.config.members();
        match self.cfg.fanout {
            Fanout::Broadcast => members,
            Fanout::Narrow if fallback => members,
            Fanout::Narrow => {
                let n = members.len();
                let k = (k as usize).min(n);
                (0..k).map(|i| members[(req as usize + i) % n]).collect()
            }
        }
    }

    fn fresh_ts(&mut self, ctx: &Ctx<'_, Msg<S::Inv, S::Res>>) -> Timestamp {
        let counter = ctx.now().max(self.last_counter + 1);
        self.last_counter = counter;
        Timestamp {
            counter,
            node: ctx.me(),
        }
    }

    fn start_next_txn(&mut self, ctx: &mut Ctx<'_, Msg<S::Inv, S::Res>>) {
        if self.cursor >= self.txns.len() {
            return; // workload done; going quiet drains the simulation
        }
        let action = ActionId(ctx.me() * 100_000 + self.action_seq);
        self.action_seq += 1;
        let begin_ts = self.fresh_ts(ctx);
        self.records.push(Record::Begin {
            t: begin_ts.counter,
            action,
        });
        ctx.trace(TraceAction::TxnBegin {
            action: u64::from(action.0),
        });
        self.current = Some(Txn {
            action,
            begin_ts,
            op_idx: 0,
            op_started: ctx.now(),
            own: BTreeMap::new(),
            phase: None,
            attempts_left: self.cfg.txn_retries,
        });
        self.start_op(ctx);
    }

    fn start_op(&mut self, ctx: &mut Ctx<'_, Msg<S::Inv, S::Res>>) {
        let Some(txn) = &mut self.current else { return };
        let (obj, inv) = self.txns[self.cursor].ops[txn.op_idx].clone();
        self.req_counter += 1;
        let req = self.req_counter;
        let (action, begin_ts) = (txn.action, txn.begin_ts);
        let op = S::op_class(&inv);
        let mut ti = self.config.max_initial(op);
        if self.cfg.weaken_read_quorum {
            // The injected bug: assemble the initial view from one site
            // too few, breaking the ti + tf > n co-presence requirement.
            // Under narrow fan-out this shrinks the contacted set itself,
            // so reservations and views both lose guaranteed intersection
            // with final quorums — the unsoundness the oracle must catch.
            ti = ti.saturating_sub(1).max(1);
        }
        txn.op_started = ctx.now();
        txn.phase = Some(Phase::Reading {
            req,
            obj,
            inv,
            merged: ObjectLog::new(),
            replied: HashSet::new(),
            retries: 0,
            since: ctx.now(),
        });
        ctx.trace(TraceAction::PhaseStart {
            obj: u64::from(obj.0),
            req,
            phase: PhaseKind::Read,
        });
        let cfg = self.config.version();
        for r in self.targets(req, ti, false) {
            let since = self.frontier(obj, r);
            ctx.send(
                r,
                Msg::ReadLog {
                    obj,
                    req,
                    action,
                    begin_ts,
                    op,
                    cfg,
                    since,
                },
            );
        }
        ctx.set_timer(self.cfg.op_timeout, req);
    }

    /// Initial quorum assembled: run the protocol, then push the view.
    fn evaluate_and_write(&mut self, ctx: &mut Ctx<'_, Msg<S::Inv, S::Res>>) {
        let Some(txn) = &mut self.current else { return };
        let Some(Phase::Reading {
            req,
            obj,
            inv,
            merged,
            since,
            ..
        }) = txn.phase.take()
        else {
            return;
        };
        self.metrics.initial_rt.push(ctx.now() - since);
        ctx.trace(TraceAction::PhaseEnd {
            obj: u64::from(obj.0),
            req,
            phase: PhaseKind::Read,
            rtt: ctx.now() - since,
        });
        let own = txn.own.get(&obj).cloned().unwrap_or_default();
        match self
            .cfg
            .protocol
            .evaluate::<S>(&merged, &own, txn.action, txn.begin_ts, &inv)
        {
            Err(conflict) => {
                ctx.trace(TraceAction::Conflict {
                    obj: u64::from(obj.0),
                    action: u64::from(txn.action.0),
                    with: u64::from(conflict.with.0),
                    kind: match conflict.reason {
                        ConflictReason::Lock => ConflictKind::Lock,
                        ConflictReason::TooLate => ConflictKind::TooLate,
                        ConflictReason::DirtyPast => ConflictKind::DirtyPast,
                    },
                });
                self.abort_txn(ctx, AbortKind::Conflict);
            }
            Ok(res) => {
                let ts = {
                    let counter = ctx.now().max(self.last_counter + 1);
                    self.last_counter = counter;
                    Timestamp {
                        counter,
                        node: ctx.me(),
                    }
                };
                let txn = self.current.as_mut().expect("txn in progress");
                let event = Event::new(inv.clone(), res);
                let entry = LogEntry {
                    ts,
                    action: txn.action,
                    begin_ts: txn.begin_ts,
                    event: event.clone(),
                };
                txn.own.entry(obj).or_default().push(entry.clone());

                // Build the updated view: merged quorum logs + prior own
                // entries for this object + every resolution we know. The
                // fresh entry rides separately for reservation validation.
                // (Under the ablation, only own entries and resolutions are
                // written — no transitive log propagation.)
                let mut view = if self.cfg.propagate_views {
                    merged
                } else {
                    ObjectLog::new()
                };
                for e in txn.own.get(&obj).into_iter().flatten() {
                    view.insert(e.clone());
                }
                for (a, o) in &self.known {
                    view.resolve(*a, *o);
                }

                let need = self
                    .config
                    .max_final(S::event_class(&event.inv, &event.res));
                self.metrics.view_sizes.push(view.len() as u64);
                self.req_counter += 1;
                let req = self.req_counter;
                let txn = self.current.as_mut().expect("txn in progress");
                txn.phase = Some(Phase::Writing {
                    req,
                    obj,
                    event,
                    view: view.clone(),
                    entry: entry.clone(),
                    acks: HashSet::new(),
                    retries: 0,
                    since: ctx.now(),
                });
                ctx.trace(TraceAction::PhaseStart {
                    obj: u64::from(obj.0),
                    req,
                    phase: PhaseKind::Write,
                });
                let cfg = self.config.version();
                for r in self.targets(req, need.max(1), false) {
                    ctx.send(
                        r,
                        Msg::WriteLog {
                            obj,
                            req,
                            log: view.clone(),
                            entry: Some(entry.clone()),
                            cfg,
                        },
                    );
                }
                ctx.set_timer(self.cfg.op_timeout, req);
                if need == 0 {
                    self.op_complete(ctx);
                }
            }
        }
    }

    fn op_complete(&mut self, ctx: &mut Ctx<'_, Msg<S::Inv, S::Res>>) {
        let Some(txn) = &mut self.current else { return };
        let Some(Phase::Writing {
            req,
            obj,
            event,
            since,
            ..
        }) = txn.phase.take()
        else {
            return;
        };
        self.metrics.final_rt.push(ctx.now() - since);
        self.metrics.op_latency.push(ctx.now() - txn.op_started);
        ctx.trace(TraceAction::PhaseEnd {
            obj: u64::from(obj.0),
            req,
            phase: PhaseKind::Write,
            rtt: ctx.now() - since,
        });
        self.stats.ops_completed += 1;
        self.records.push(Record::Op {
            t: ctx.now(),
            action: txn.action,
            obj,
            event,
        });
        txn.op_idx += 1;
        if txn.op_idx < self.txns[self.cursor].ops.len() {
            self.start_op(ctx);
        } else if self.cfg.commit_delay == 0 {
            self.commit_txn(ctx);
        } else {
            ctx.set_timer(self.cfg.commit_delay, TOKEN_COMMIT);
        }
    }

    fn commit_txn(&mut self, ctx: &mut Ctx<'_, Msg<S::Inv, S::Res>>) {
        let cts = self.fresh_ts(ctx);
        let Some(txn) = self.current.take() else {
            return;
        };
        self.records.push(Record::Commit {
            t: cts.counter,
            action: txn.action,
        });
        ctx.trace(TraceAction::Commit {
            action: u64::from(txn.action.0),
        });
        let outcome = ActionOutcome::Committed(cts);
        self.known.insert(txn.action, outcome);
        // The write manifest: entries appended per object. Repositories
        // fold a committed action into a checkpoint only once they hold
        // all of its entries; this is how they know the count.
        let entries: Vec<(ObjId, u32)> =
            txn.own.iter().map(|(o, v)| (*o, v.len() as u32)).collect();
        for r in self.cfg.repos.clone() {
            ctx.send(
                r,
                Msg::Resolve {
                    action: txn.action,
                    outcome,
                    entries: entries.clone(),
                },
            );
        }
        self.stats.committed += 1;
        self.cursor += 1;
        ctx.set_timer(self.cfg.think_time.max(1), TOKEN_KICK);
    }

    fn abort_txn(&mut self, ctx: &mut Ctx<'_, Msg<S::Inv, S::Res>>, kind: AbortKind) {
        let Some(txn) = self.current.take() else {
            return;
        };
        self.records.push(Record::Abort {
            t: ctx.now(),
            action: txn.action,
        });
        ctx.trace(TraceAction::Abort {
            action: u64::from(txn.action.0),
            cause: match kind {
                AbortKind::Conflict => AbortCause::Conflict,
                AbortKind::Unavailable => AbortCause::Unavailable,
                AbortKind::Stale => AbortCause::StaleEpoch,
            },
        });
        self.known.insert(txn.action, ActionOutcome::Aborted);
        for r in self.cfg.repos.clone() {
            ctx.send(
                r,
                Msg::Resolve {
                    action: txn.action,
                    outcome: ActionOutcome::Aborted,
                    entries: Vec::new(),
                },
            );
        }
        match kind {
            AbortKind::Conflict => self.stats.aborted_conflict += 1,
            AbortKind::Unavailable => self.stats.aborted_unavailable += 1,
            AbortKind::Stale => self.stats.stale_retries += 1,
        }
        // Stale-epoch aborts retry for free: the transaction did nothing
        // wrong, the ground shifted under it. Other aborts consume the
        // configured retry budget.
        let budget = match kind {
            AbortKind::Stale => Some(txn.attempts_left),
            _ if txn.attempts_left > 0 => Some(txn.attempts_left - 1),
            _ => None,
        };
        if let Some(left) = budget {
            // Re-run the same transaction as a fresh action after a
            // randomized exponential backoff (deterministic per run via
            // the simulation RNG) — symmetric deterministic delays livelock
            // under contention.
            self.retry_pending = Some(left);
            let attempt = self.cfg.txn_retries.saturating_sub(left);
            let window = 1u64 << attempt.min(5);
            use rand::Rng as _;
            let jitter = ctx.rng().gen_range(0..window.max(1));
            let backoff = self.cfg.think_time.max(1) * (1 + jitter) + u64::from(ctx.me() % 7);
            ctx.set_timer(backoff, TOKEN_KICK);
        } else {
            self.cursor += 1;
            ctx.set_timer(self.cfg.think_time.max(1), TOKEN_KICK);
        }
    }

    /// Handles one delivered message.
    pub fn handle(
        &mut self,
        ctx: &mut Ctx<'_, Msg<S::Inv, S::Res>>,
        from: ProcId,
        msg: Msg<S::Inv, S::Res>,
    ) {
        match msg {
            Msg::LogReply { obj, req, delta } => {
                self.metrics.log_entries_shipped += delta.entries.len() as u64;
                self.metrics.reply_payload.push(delta.payload_entries());
                // Advance the mirror first, even for stale replies — the
                // data was shipped for a frontier this mirror announced,
                // and dropping it would desynchronize the frontier.
                if self.cfg.delta_shipping {
                    let gc = self.cfg.compact_logs;
                    self.mirrors
                        .entry((obj, from))
                        .or_insert_with(|| VersionedLog::with_gc(gc))
                        .apply_delta(&delta);
                }
                let want_eval = {
                    let Some(txn) = &mut self.current else { return };
                    let Some(Phase::Reading {
                        req: cur,
                        inv,
                        merged,
                        replied,
                        ..
                    }) = &mut txn.phase
                    else {
                        return;
                    };
                    if *cur != req {
                        return; // stale reply
                    }
                    if self.cfg.delta_shipping {
                        // The mirror *is* the site's log at serving time;
                        // merging it is what merging the full reply did.
                        if let Some(m) = self.mirrors.get(&(obj, from)) {
                            merged.merge(m.log());
                        }
                    } else {
                        merged.merge(&delta.to_log());
                    }
                    replied.insert(from);
                    // Joint-aware: during a reconfiguration the reply set
                    // must contain an initial quorum of both configs.
                    if self.cfg.weaken_read_quorum {
                        let mut padded = replied.clone();
                        if let Some(extra) = self
                            .config
                            .members()
                            .into_iter()
                            .find(|m| !padded.contains(m))
                        {
                            padded.insert(extra);
                        }
                        self.config.initial_ok(S::op_class(inv), &padded)
                    } else {
                        self.config.initial_ok(S::op_class(inv), replied)
                    }
                };
                if want_eval {
                    self.evaluate_and_write(ctx);
                }
            }
            Msg::WriteAck {
                obj: _,
                req,
                conflict,
            } => {
                let verdict = {
                    let Some(txn) = &mut self.current else { return };
                    let Some(Phase::Writing {
                        req: cur,
                        obj,
                        event,
                        acks,
                        ..
                    }) = &mut txn.phase
                    else {
                        return;
                    };
                    if *cur != req {
                        return;
                    }
                    if let Some(with) = conflict {
                        // A reader depends on us: abort.
                        Some(Err((*obj, txn.action, with)))
                    } else {
                        acks.insert(from);
                        let ev = S::event_class(&event.inv, &event.res);
                        // Joint-aware: the ack set must contain a final
                        // quorum of every active configuration.
                        self.config.final_ok(ev, acks).then_some(Ok(()))
                    }
                };
                match verdict {
                    Some(Ok(())) => self.op_complete(ctx),
                    Some(Err((obj, action, with))) => {
                        ctx.trace(TraceAction::Conflict {
                            obj: u64::from(obj.0),
                            action: u64::from(action.0),
                            with: u64::from(with.0),
                            kind: ConflictKind::Reservation,
                        });
                        self.abort_txn(ctx, AbortKind::Conflict)
                    }
                    None => {}
                }
            }
            Msg::StaleConfig { req, state } => {
                // A repository refused a request because our configuration
                // is outdated. Adopt the newer state, then abort and retry
                // the affected transaction under it (the retry is free:
                // reconfiguration is not the application's fault).
                if state.version() > self.config.version() {
                    ctx.trace(TraceAction::ConfigAdopt {
                        epoch: state.epoch(),
                        version: state.version(),
                    });
                    self.config = state;
                }
                let live = self
                    .current
                    .as_ref()
                    .and_then(|t| t.phase.as_ref())
                    .map(Phase::req);
                if live == Some(req) {
                    self.abort_txn(ctx, AbortKind::Stale);
                }
            }
            // Clients ignore repository- and reconfigurer-bound messages.
            Msg::ReadLog { .. }
            | Msg::WriteLog { .. }
            | Msg::Resolve { .. }
            | Msg::Install { .. }
            | Msg::InstallAck { .. }
            | Msg::SyncReq => {}
        }
    }

    /// Handles a timer.
    pub fn tick(&mut self, ctx: &mut Ctx<'_, Msg<S::Inv, S::Res>>, token: u64) {
        if token == TOKEN_COMMIT {
            // The commit decision, delayed past the last operation.
            if self
                .current
                .as_ref()
                .is_some_and(|t| t.phase.is_none() && t.op_idx >= self.txns[self.cursor].ops.len())
            {
                self.commit_txn(ctx);
            }
            return;
        }
        if token == TOKEN_KICK {
            if self.current.is_none() {
                if let Some(left) = self.retry_pending.take() {
                    // Restart the current (aborted) transaction.
                    let action = ActionId(ctx.me() * 100_000 + self.action_seq);
                    self.action_seq += 1;
                    let begin_ts = self.fresh_ts(ctx);
                    self.records.push(Record::Begin {
                        t: begin_ts.counter,
                        action,
                    });
                    self.metrics.txn_reruns += 1;
                    ctx.trace(TraceAction::TxnBegin {
                        action: u64::from(action.0),
                    });
                    self.current = Some(Txn {
                        action,
                        begin_ts,
                        op_idx: 0,
                        op_started: ctx.now(),
                        own: BTreeMap::new(),
                        phase: None,
                        attempts_left: left,
                    });
                    self.start_op(ctx);
                } else {
                    self.start_next_txn(ctx);
                }
            }
            return;
        }
        // Phase timeout: if the token matches the live request, retry or
        // give up.
        let retry = {
            let Some(txn) = &mut self.current else { return };
            match &mut txn.phase {
                Some(Phase::Reading { req, retries, .. }) if *req == token => {
                    *retries += 1;
                    if *retries > self.cfg.max_phase_retries {
                        None
                    } else {
                        Some(RetryWhat::Read)
                    }
                }
                Some(Phase::Writing { req, retries, .. }) if *req == token => {
                    *retries += 1;
                    if *retries > self.cfg.max_phase_retries {
                        None
                    } else {
                        Some(RetryWhat::Write)
                    }
                }
                _ => return, // stale timer
            }
        };
        match retry {
            None => self.abort_txn(ctx, AbortKind::Unavailable),
            Some(RetryWhat::Read) => {
                self.metrics.phase_retries += 1;
                let Some(txn) = &self.current else { return };
                let Some(Phase::Reading { req, obj, inv, .. }) = &txn.phase else {
                    return;
                };
                ctx.trace(TraceAction::PhaseRetry {
                    req: *req,
                    phase: PhaseKind::Read,
                });
                let (req, obj, op) = (*req, *obj, S::op_class(inv));
                let (action, begin_ts) = (txn.action, txn.begin_ts);
                let cfg = self.config.version();
                for r in self.targets(req, 0, true) {
                    let since = self.frontier(obj, r);
                    ctx.send(
                        r,
                        Msg::ReadLog {
                            obj,
                            req,
                            action,
                            begin_ts,
                            op,
                            cfg,
                            since,
                        },
                    );
                }
                ctx.set_timer(self.cfg.op_timeout, req);
            }
            Some(RetryWhat::Write) => {
                self.metrics.phase_retries += 1;
                let Some(txn) = &self.current else { return };
                let Some(Phase::Writing {
                    req,
                    obj,
                    view,
                    entry,
                    ..
                }) = &txn.phase
                else {
                    return;
                };
                ctx.trace(TraceAction::PhaseRetry {
                    req: *req,
                    phase: PhaseKind::Write,
                });
                let (req, obj, view, entry) = (*req, *obj, view.clone(), entry.clone());
                let cfg = self.config.version();
                for r in self.targets(req, 0, true) {
                    ctx.send(
                        r,
                        Msg::WriteLog {
                            obj,
                            req,
                            log: view.clone(),
                            entry: Some(entry.clone()),
                            cfg,
                        },
                    );
                }
                ctx.set_timer(self.cfg.op_timeout, req);
            }
        }
    }

    /// Kick off the first transaction.
    pub fn start(&mut self, ctx: &mut Ctx<'_, Msg<S::Inv, S::Res>>) {
        // Stagger client start times slightly for realism.
        ctx.set_timer(1 + u64::from(ctx.me() % 5), TOKEN_KICK);
    }
}

enum RetryWhat {
    Read,
    Write,
}

enum AbortKind {
    Conflict,
    Unavailable,
    Stale,
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorumcc_core::DependencyRelation;
    use quorumcc_model::testtypes::TestQueue;

    fn client(fanout: Fanout, repos: u32) -> Client<TestQueue> {
        let cfg = ClientConfig {
            protocol: crate::protocol::Protocol::new(
                crate::protocol::Mode::Hybrid,
                DependencyRelation::new(),
            ),
            thresholds: quorumcc_quorum::ThresholdAssignment::new(repos),
            repos: (0..repos).collect(),
            op_timeout: 100,
            max_phase_retries: 1,
            think_time: 5,
            commit_delay: 0,
            txn_retries: 0,
            propagate_views: true,
            fanout,
            delta_shipping: true,
            compact_logs: false,
            weaken_read_quorum: false,
        };
        Client::new(cfg, Vec::new())
    }

    #[test]
    fn broadcast_targets_everyone() {
        let c = client(Fanout::Broadcast, 5);
        assert_eq!(c.targets(3, 2, false), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn narrow_targets_rotate_by_request() {
        let c = client(Fanout::Narrow, 5);
        assert_eq!(c.targets(0, 2, false), vec![0, 1]);
        assert_eq!(c.targets(1, 2, false), vec![1, 2]);
        assert_eq!(c.targets(4, 2, false), vec![4, 0]);
        // Fallback broadens to everyone.
        assert_eq!(c.targets(4, 2, true), vec![0, 1, 2, 3, 4]);
        // Requests never exceed the cluster.
        assert_eq!(c.targets(0, 99, false).len(), 5);
    }

    #[test]
    fn fresh_client_has_no_records_or_stats() {
        let c = client(Fanout::Broadcast, 3);
        assert!(c.records().is_empty());
        assert_eq!(c.stats(), ClientStats::default());
    }
}
