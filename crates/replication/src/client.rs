//! Clients with embedded front-ends: the §3.2 execution loop as a
//! message-driven state machine.
//!
//! Each operation runs in two quorum phases: **read** — collect logs from
//! an initial quorum and merge them into a view — and **write** — append
//! the freshly stamped entry and push the updated view to a final quorum.
//! Transactions commit by broadcasting a `Resolve` with a commit-time
//! Lamport timestamp (resolutions also gossip through later view writes,
//! so a lost broadcast only delays, never corrupts).
//!
//! Timestamps use the simulated time as the Lamport counter (physical
//! clocks are a valid Lamport implementation), which makes the captured
//! history's commit order coincide with commit-timestamp order — exactly
//! the "unambiguous ordering on Begin and Commit events" the paper
//! assumes.

use crate::driver::Io;
use crate::messages::{Batcher, Msg};
use crate::metrics::ClientMetrics;
use crate::protocol::{ConflictReason, Protocol};
use crate::reconfig::{ConfigState, ShardedConfig};
use crate::types::{ActionOutcome, LogEntry, ObjId, ObjectLog, VersionedLog};
use quorumcc_model::{ActionId, Classified, Event};
use quorumcc_quorum::ThresholdAssignment;
use quorumcc_sim::trace::{AbortCause, ConflictKind, PhaseKind, TraceAction};
use quorumcc_sim::{ProcId, SimTime, Timestamp};
use std::collections::{BTreeMap, BTreeSet};

/// A transaction: a sequence of operations on replicated objects.
#[derive(Debug, Clone)]
pub struct Transaction<I> {
    /// The operations, in order.
    pub ops: Vec<(ObjId, I)>,
}

/// What a client records for history reconstruction.
#[derive(Debug, Clone)]
pub enum Record<I, R> {
    /// An action began.
    Begin {
        /// Event time (= Begin timestamp counter).
        t: SimTime,
        /// The action.
        action: ActionId,
    },
    /// An operation completed (final quorum acknowledged).
    Op {
        /// Completion time.
        t: SimTime,
        /// The executing action.
        action: ActionId,
        /// The object operated on.
        obj: ObjId,
        /// The observed event.
        event: Event<I, R>,
    },
    /// The action committed.
    Commit {
        /// Commit time (= commit timestamp counter).
        t: SimTime,
        /// The action.
        action: ActionId,
    },
    /// The action aborted.
    Abort {
        /// Abort time.
        t: SimTime,
        /// The action.
        action: ActionId,
    },
}

/// Client-side outcome counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Transactions committed.
    pub committed: usize,
    /// Transactions aborted on a concurrency conflict.
    pub aborted_conflict: usize,
    /// Transactions aborted because a quorum was unreachable.
    pub aborted_unavailable: usize,
    /// Individual operations completed.
    pub ops_completed: usize,
    /// Transactions aborted on a stale configuration epoch and retried
    /// under the adopted one (these do not consume the retry budget and
    /// are not counted as conflict or unavailability aborts).
    pub stale_retries: usize,
}

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// The concurrency-control protocol.
    pub protocol: Protocol,
    /// Quorum thresholds (validated against the protocol's relation by the
    /// cluster builder).
    pub thresholds: ThresholdAssignment,
    /// Repository process ids.
    pub repos: Vec<ProcId>,
    /// Per-phase timeout before a retry.
    pub op_timeout: SimTime,
    /// Phase retries before declaring the quorum unavailable.
    pub max_phase_retries: u32,
    /// Idle time between transactions.
    pub think_time: SimTime,
    /// Delay between the last operation completing and the commit decision
    /// (models atomic-commitment latency; 0 = commit immediately).
    pub commit_delay: SimTime,
    /// How many times to re-run an aborted transaction (each attempt is a
    /// fresh action).
    pub txn_retries: u32,
    /// Whether final-quorum writes carry the whole merged view (§3.2's
    /// algorithm) or only the fresh entry. Disabling this is an ablation:
    /// transitive dependencies (a PROM `Read` learning of `Write`s through
    /// the `Seal` entry) stop working, and minimal quorum assignments
    /// become observably unsound.
    pub propagate_views: bool,
    /// Quorum fan-out policy.
    pub fanout: Fanout,
    /// Delta log shipping: piggyback per-site known frontiers on
    /// `ReadLog` so repositories ship only the missing suffix, mirrored
    /// locally per (object, site). Disabling reverts to full-log replies
    /// (the shipping ablation/baseline).
    pub delta_shipping: bool,
    /// Whether the cluster runs committed-prefix compaction (mirrors then
    /// garbage-collect aborted entries the same way repositories do).
    pub compact_logs: bool,
    /// Test-only fault injection for the safety oracle's self-test:
    /// assemble every initial view from one repository too few (and count
    /// one phantom reply toward the quorum check), silently weakening the
    /// `ti + tf > n` intersection by one site. Runs with this enabled
    /// produce histories the oracle must flag; never enable it outside
    /// tests.
    pub weaken_read_quorum: bool,
    /// Test-only fault injection, the second planted bug: treat every
    /// final-quorum write as complete the moment it is *sent*, without
    /// waiting for a single acknowledgment. Commits then race their own
    /// `WriteLog`s — a schedule that commits before any repository holds
    /// the entry is a lost write the oracle must flag. Never enable it
    /// outside tests.
    pub skip_final_ack: bool,
    /// Number of shards the object space is partitioned into (1 = the
    /// classic unsharded cluster). Each shard carries its own quorum map.
    pub shards: u16,
    /// Batch size and pipeline depth. `1` (the default) is byte-identical
    /// to the pre-batching client: one operation in flight, every message
    /// sent raw. Above 1, up to `batch` operations of a transaction run
    /// their quorum phases concurrently (reads of one shard overlapping
    /// writes of another), and up to `batch` payloads per destination
    /// coalesce into one [`Msg::Batch`] envelope.
    pub batch: u32,
    /// Logical-time flush window: `0` flushes pending batches at the end
    /// of every event (the deterministic default); `w > 0` holds queues
    /// open across events for up to `w` ticks, trading latency for fill.
    pub batch_window: SimTime,
    /// Per-shard threshold assignments; when its length equals `shards`,
    /// shard `s` bootstraps with `shard_thresholds[s]` instead of the
    /// global `thresholds` (membership and epoch stay global).
    pub shard_thresholds: Vec<ThresholdAssignment>,
    /// Status-GC participation: tally [`Msg::ResolveAck`]s, advance the
    /// durable resolution frontier, piggyback it on every `ReadLog`, and
    /// prune locally known resolutions once globally acknowledged (a full
    /// ack set proves every repository processed the `Resolve`, so no
    /// reservation or undecided entry can still depend on the gossip
    /// backup). Enable together with the repositories' GC batch.
    pub status_gc: bool,
    /// Resolve retransmission period (`None` = off, the legacy
    /// fire-and-forget behaviour). When set together with `status_gc`,
    /// the client keeps every resolution below the durable frontier in a
    /// pending set and periodically re-sends [`Msg::Resolve`] to exactly
    /// the repositories whose [`Msg::ResolveAck`] is still missing. This
    /// is the frontier-repair path: a repository crash that loses an ack
    /// (or the `Resolve` itself) would otherwise stall `durable_next` —
    /// and with it status GC — forever. Retransmission is safe because
    /// repositories apply `Resolve` idempotently and re-ack every receipt.
    pub resolve_retransmit: Option<SimTime>,
}

/// How a front-end selects the repositories it contacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fanout {
    /// Contact every repository, count the first quorum of replies. Extra
    /// replicas receive the data too (maximum redundancy).
    Broadcast,
    /// Contact exactly a quorum-sized, per-request-rotating subset
    /// (load-optimized preferred quorums); timeouts fall back to
    /// broadcast. This is the configuration under which quorum sizes are
    /// exactly what lands on disk — used by the propagation ablation.
    Narrow,
}

const TOKEN_KICK: u64 = 0;
const TOKEN_COMMIT: u64 = u64::MAX;
const TOKEN_FLUSH: u64 = u64::MAX - 2;
const TOKEN_RETRANSMIT: u64 = u64::MAX - 3;

/// Consecutive retransmit rounds without frontier progress before the
/// client gives up on repair (a repository that never comes back should
/// not keep the process awake forever).
const RETRANSMIT_GIVE_UP: u32 = 64;

/// A resolution held for frontier repair: the action, its outcome, and
/// the `(object, entry)` pairs its `Resolve` names.
type PendingResolve = (ActionId, ActionOutcome, Vec<(ObjId, u32)>);

impl<I, R> Phase<I, R> {
    /// The object the phase operates on.
    fn obj(&self) -> ObjId {
        match self {
            Phase::Reading { obj, .. } | Phase::Writing { obj, .. } => *obj,
        }
    }
}

#[derive(Debug, Clone)]
enum Phase<I, R> {
    Reading {
        op_idx: usize,
        obj: ObjId,
        inv: I,
        merged: ObjectLog<I, R>,
        replied: BTreeSet<ProcId>,
        retries: u32,
        since: SimTime,
        started: SimTime,
    },
    Writing {
        obj: ObjId,
        event: Event<I, R>,
        view: ObjectLog<I, R>,
        entry: LogEntry<I, R>,
        acks: BTreeSet<ProcId>,
        retries: u32,
        since: SimTime,
        started: SimTime,
    },
}

/// A read whose quorum assembled before all earlier operations were
/// evaluated: parked until its turn. Evaluation is strictly in program
/// order, so when operation `k` evaluates, the `own` entries of every
/// operation before `k` already exist — pipelining reorders network
/// phases, never the serial semantics of the transaction.
#[derive(Debug, Clone)]
struct ReadyRead<I, R> {
    obj: ObjId,
    inv: I,
    merged: ObjectLog<I, R>,
    started: SimTime,
}

#[derive(Debug, Clone)]
struct Txn<I, R> {
    action: ActionId,
    begin_ts: Timestamp,
    /// Next operation to launch a read phase for.
    next_op: usize,
    /// Operations evaluated so far (their write phase entered, their
    /// entry appended to `own`). Always contiguous from 0.
    evaluated: usize,
    /// Operations whose final quorum completed.
    completed: usize,
    own: BTreeMap<ObjId, Vec<LogEntry<I, R>>>,
    /// In-flight quorum phases, keyed by request id (= timer token).
    /// At pipeline depth 1 this holds at most one phase.
    phases: BTreeMap<u64, Phase<I, R>>,
    /// Assembled reads awaiting in-order evaluation, keyed by op index.
    ready: BTreeMap<usize, ReadyRead<I, R>>,
    attempts_left: u32,
}

impl<I, R> Txn<I, R> {
    fn in_flight(&self) -> usize {
        self.phases.len() + self.ready.len()
    }
}

/// A client process driving transactions through its embedded front-end.
#[derive(Debug, Clone)]
pub struct Client<S: Classified> {
    cfg: ClientConfig,
    txns: Vec<Transaction<S::Inv>>,
    cursor: usize,
    action_seq: u32,
    current: Option<Txn<S::Inv, S::Res>>,
    records: Vec<Record<S::Inv, S::Res>>,
    stats: ClientStats,
    metrics: ClientMetrics,
    req_counter: u64,
    last_counter: u64,
    known: BTreeMap<ActionId, ActionOutcome>,
    retry_pending: Option<u32>,
    /// Per-(object, site) mirrors of repository logs, advanced by applying
    /// the deltas in `LogReply`. A mirror equals the site's log as of the
    /// last reply received; its version is the frontier piggybacked on the
    /// next `ReadLog` to that site.
    mirrors: BTreeMap<(ObjId, ProcId), VersionedLog<S::Inv, S::Res>>,
    /// The per-shard quorum maps this front-end currently believes
    /// govern: quorum counting and fan-out follow the shard of the object
    /// operated on, and every quorum-bearing message carries that shard's
    /// version. Updated when a repository bounces a request with
    /// [`Msg::StaleConfig`].
    config: ShardedConfig,
    /// Per-destination send coalescing (`Some` iff `cfg.batch > 1`).
    batcher: Option<Batcher<S::Inv, S::Res>>,
    /// Whether a `TOKEN_FLUSH` timer is pending (window mode only).
    flush_scheduled: bool,
    /// Per-sequence-number [`Msg::ResolveAck`] tallies for this client's
    /// resolved actions (status GC only).
    acks_by_seq: BTreeMap<u32, BTreeSet<ProcId>>,
    /// Smallest action sequence number not yet acknowledged by every
    /// repository; every sequence below it is globally durable.
    durable_next: u32,
    /// Resolutions not yet below the durable frontier, kept for
    /// retransmission (populated only when `cfg.resolve_retransmit` and
    /// `cfg.status_gc` are both on). Keyed by action sequence number.
    pending_resolves: BTreeMap<u32, PendingResolve>,
    /// Whether a `TOKEN_RETRANSMIT` timer is outstanding.
    retransmit_armed: bool,
    /// `durable_next` as of the previous retransmit fire (stall detection).
    frontier_at_last_fire: u32,
    /// Consecutive retransmit fires without frontier progress.
    stall_streak: u32,
}

impl<S: Classified> Client<S> {
    /// Builds a client that will run `txns` under `cfg`, starting from the
    /// epoch-0 configuration (all of `cfg.repos` with `cfg.thresholds`,
    /// or per-shard thresholds when `cfg.shard_thresholds` supplies them).
    pub fn new(cfg: ClientConfig, txns: Vec<Transaction<S::Inv>>) -> Self {
        let shards = cfg.shards.max(1);
        let states: Vec<ConfigState> = if cfg.shard_thresholds.len() == shards as usize {
            cfg.shard_thresholds
                .iter()
                .map(|ta| ConfigState::bootstrap(cfg.repos.iter().copied(), ta.clone()))
                .collect()
        } else {
            vec![
                ConfigState::bootstrap(cfg.repos.iter().copied(), cfg.thresholds.clone());
                shards as usize
            ]
        };
        let config = ShardedConfig::from_states(states);
        let batcher = (cfg.batch > 1).then(|| Batcher::new(cfg.batch as usize));
        Client {
            cfg,
            txns,
            cursor: 0,
            action_seq: 0,
            current: None,
            records: Vec::new(),
            stats: ClientStats::default(),
            metrics: ClientMetrics::default(),
            req_counter: 0,
            last_counter: 0,
            known: BTreeMap::new(),
            retry_pending: None,
            mirrors: BTreeMap::new(),
            config,
            batcher,
            flush_scheduled: false,
            acks_by_seq: BTreeMap::new(),
            durable_next: 0,
            pending_resolves: BTreeMap::new(),
            retransmit_armed: false,
            frontier_at_last_fire: 0,
            stall_streak: 0,
        }
    }

    /// The durable-GC frontier: every action sequence number below this is
    /// acknowledged by every repository. Exposed for the recovery property
    /// tests (monotonicity under duplicated/reordered acks).
    pub fn durable_frontier_seq(&self) -> u32 {
        self.durable_next
    }

    /// The durable resolution frontier to piggyback on `ReadLog` sends
    /// (0 = no promise, also the status-GC-off value). `durable_next` is
    /// the smallest sequence *not yet* fully acked, so everything at or
    /// below `durable_next - 1` is collectable.
    fn durable_frontier(&self) -> u64 {
        if !self.cfg.status_gc {
            return 0;
        }
        // Count semantics: the number of contiguously acked sequence
        // numbers from 0 — every action with `seq < durable_next` is
        // globally durable. (Not "highest acked seq": that encoding
        // cannot distinguish "nothing acked" from "seq 0 acked", which
        // would pin every client's first action forever.)
        u64::from(self.durable_next)
    }

    /// Pipeline depth: how many of a transaction's operations may hold
    /// in-flight quorum phases at once.
    fn depth(&self) -> usize {
        self.cfg.batch.max(1) as usize
    }

    /// Routes a batchable send: raw when batching is off, coalesced
    /// otherwise.
    fn send_msg<IO: Io<Msg<S::Inv, S::Res>> + ?Sized>(
        &mut self,
        ctx: &mut IO,
        to: ProcId,
        msg: Msg<S::Inv, S::Res>,
    ) {
        match &mut self.batcher {
            Some(b) => b.push(ctx, to, msg),
            None => ctx.send(to, msg),
        }
    }

    /// End-of-event flush (or window-timer scheduling) for the batcher.
    fn flush_batch<IO: Io<Msg<S::Inv, S::Res>> + ?Sized>(&mut self, ctx: &mut IO) {
        let Some(b) = &mut self.batcher else { return };
        if self.cfg.batch_window == 0 {
            b.flush(ctx);
        } else if !self.flush_scheduled && !b.is_empty() {
            ctx.set_timer(self.cfg.batch_window, TOKEN_FLUSH);
            self.flush_scheduled = true;
        }
        self.metrics.batches_flushed = b.flushed();
        self.metrics.batch_fill.extend(b.take_fills());
    }

    /// The log-version frontier to piggyback on a `ReadLog` to `site`
    /// (0 = request a full transfer, also the delta-shipping-off value).
    fn frontier(&self, obj: ObjId, site: ProcId) -> u64 {
        if !self.cfg.delta_shipping {
            return 0;
        }
        self.mirrors
            .get(&(obj, site))
            .map_or(0, VersionedLog::version)
    }

    /// The records captured so far (for history assembly).
    pub fn records(&self) -> &[Record<S::Inv, S::Res>] {
        &self.records
    }

    /// True once the client has no further work to do: every scripted
    /// transaction has been decided and no retry is pending. Real-time
    /// backends use this to detect quiescence (the DES backend instead
    /// runs until its event queue drains).
    pub fn is_done(&self) -> bool {
        self.cursor >= self.txns.len() && self.current.is_none() && self.retry_pending.is_none()
    }

    /// Outcome counters.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Raw metric samples collected so far (latencies, retries, views).
    pub fn metrics(&self) -> &ClientMetrics {
        &self.metrics
    }

    /// The repositories to contact for a phase on `obj` wanting `k`
    /// responses — drawn from the membership of the configuration
    /// governing `obj`'s shard (the union of both memberships while a
    /// reconfiguration is in flight).
    fn targets(&self, obj: ObjId, req: u64, k: u32, fallback: bool) -> Vec<ProcId> {
        let members = self.config.state(obj).members();
        match self.cfg.fanout {
            Fanout::Broadcast => members,
            Fanout::Narrow if fallback => members,
            Fanout::Narrow => {
                let n = members.len();
                let k = (k as usize).min(n);
                (0..k).map(|i| members[(req as usize + i) % n]).collect()
            }
        }
    }

    fn fresh_ts<IO: Io<Msg<S::Inv, S::Res>> + ?Sized>(&mut self, ctx: &IO) -> Timestamp {
        let counter = ctx.now().max(self.last_counter + 1);
        self.last_counter = counter;
        Timestamp {
            counter,
            node: ctx.me(),
        }
    }

    fn start_next_txn<IO: Io<Msg<S::Inv, S::Res>> + ?Sized>(&mut self, ctx: &mut IO) {
        if self.cursor >= self.txns.len() {
            return; // workload done; going quiet drains the simulation
        }
        let action = ActionId(ctx.me() * 100_000 + self.action_seq);
        self.action_seq += 1;
        let begin_ts = self.fresh_ts(ctx);
        self.records.push(Record::Begin {
            t: begin_ts.counter,
            action,
        });
        ctx.trace(TraceAction::TxnBegin {
            action: u64::from(action.0),
        });
        self.current = Some(Txn {
            action,
            begin_ts,
            next_op: 0,
            evaluated: 0,
            completed: 0,
            own: BTreeMap::new(),
            phases: BTreeMap::new(),
            ready: BTreeMap::new(),
            attempts_left: self.cfg.txn_retries,
        });
        self.pump(ctx);
    }

    /// The pipeline driver: launches read phases in program order while
    /// the depth budget allows and the next operation's shard is disjoint
    /// from every in-flight operation's shard. At depth 1 this launches
    /// exactly one operation at a time — the classic serial front-end.
    fn pump<IO: Io<Msg<S::Inv, S::Res>> + ?Sized>(&mut self, ctx: &mut IO) {
        loop {
            let Some(txn) = &self.current else { return };
            if txn.next_op >= self.txns[self.cursor].ops.len() || txn.in_flight() >= self.depth() {
                return;
            }
            let map = self.config.map();
            let shard = map.of(self.txns[self.cursor].ops[txn.next_op].0);
            let busy = txn.phases.values().any(|p| map.of(p.obj()) == shard)
                || txn.ready.values().any(|r| map.of(r.obj) == shard);
            if busy {
                // Head-of-line: operations launch strictly in order, so a
                // same-shard collision stalls the pipeline rather than
                // reordering it.
                return;
            }
            self.start_op(ctx);
        }
    }

    fn start_op<IO: Io<Msg<S::Inv, S::Res>> + ?Sized>(&mut self, ctx: &mut IO) {
        let Some(txn) = &mut self.current else { return };
        let op_idx = txn.next_op;
        let (obj, inv) = self.txns[self.cursor].ops[op_idx].clone();
        self.req_counter += 1;
        let req = self.req_counter;
        let (action, begin_ts) = (txn.action, txn.begin_ts);
        let op = S::op_class(&inv);
        let mut ti = self.config.state(obj).max_initial(op);
        if self.cfg.weaken_read_quorum {
            // The injected bug: assemble the initial view from one site
            // too few, breaking the ti + tf > n co-presence requirement.
            // Under narrow fan-out this shrinks the contacted set itself,
            // so reservations and views both lose guaranteed intersection
            // with final quorums — the unsoundness the oracle must catch.
            ti = ti.saturating_sub(1).max(1);
        }
        txn.next_op += 1;
        txn.phases.insert(
            req,
            Phase::Reading {
                op_idx,
                obj,
                inv,
                merged: ObjectLog::new(),
                replied: BTreeSet::new(),
                retries: 0,
                since: ctx.now(),
                started: ctx.now(),
            },
        );
        ctx.trace(TraceAction::PhaseStart {
            obj: u64::from(obj.0),
            req,
            phase: PhaseKind::Read,
        });
        let cfg = self.config.state(obj).version();
        let durable = self.durable_frontier();
        for r in self.targets(obj, req, ti, false) {
            let since = self.frontier(obj, r);
            self.send_msg(
                ctx,
                r,
                Msg::ReadLog {
                    obj,
                    req,
                    action,
                    begin_ts,
                    op,
                    cfg,
                    since,
                    durable,
                },
            );
        }
        ctx.set_timer(self.cfg.op_timeout, req);
    }

    /// Evaluates parked reads in program order for as long as the next
    /// op's read has assembled (evaluation may abort the transaction,
    /// which empties everything and stops the loop).
    fn drain_ready<IO: Io<Msg<S::Inv, S::Res>> + ?Sized>(&mut self, ctx: &mut IO) {
        loop {
            let Some(txn) = &mut self.current else { return };
            let idx = txn.evaluated;
            let Some(ready) = txn.ready.remove(&idx) else {
                return;
            };
            self.evaluate_and_write(ctx, idx, ready);
        }
    }

    /// Initial quorum assembled and it is this op's turn: run the
    /// protocol, then push the view to a final quorum.
    fn evaluate_and_write<IO: Io<Msg<S::Inv, S::Res>> + ?Sized>(
        &mut self,
        ctx: &mut IO,
        op_idx: usize,
        ready: ReadyRead<S::Inv, S::Res>,
    ) {
        let Some(txn) = &mut self.current else { return };
        let ReadyRead {
            obj,
            inv,
            merged,
            started,
        } = ready;
        let own = txn.own.get(&obj).cloned().unwrap_or_default();
        match self
            .cfg
            .protocol
            .evaluate::<S>(&merged, &own, txn.action, txn.begin_ts, &inv)
        {
            Err(conflict) => {
                ctx.trace(TraceAction::Conflict {
                    obj: u64::from(obj.0),
                    action: u64::from(txn.action.0),
                    with: u64::from(conflict.with.0),
                    kind: match conflict.reason {
                        ConflictReason::Lock => ConflictKind::Lock,
                        ConflictReason::TooLate => ConflictKind::TooLate,
                        ConflictReason::DirtyPast => ConflictKind::DirtyPast,
                    },
                });
                self.abort_txn(ctx, AbortKind::Conflict);
            }
            Ok(res) => {
                let ts = {
                    let counter = ctx.now().max(self.last_counter + 1);
                    self.last_counter = counter;
                    Timestamp {
                        counter,
                        node: ctx.me(),
                    }
                };
                let txn = self.current.as_mut().expect("txn in progress");
                let event = Event::new(inv.clone(), res);
                let entry = LogEntry {
                    ts,
                    action: txn.action,
                    begin_ts: txn.begin_ts,
                    event: event.clone(),
                };
                txn.own.entry(obj).or_default().push(entry.clone());
                txn.evaluated = op_idx + 1;

                // Build the updated view: merged quorum logs + prior own
                // entries for this object + every resolution we know. The
                // fresh entry rides separately for reservation validation.
                // (Under the ablation, only own entries and resolutions are
                // written — no transitive log propagation.)
                let mut view = if self.cfg.propagate_views {
                    merged
                } else {
                    ObjectLog::new()
                };
                for e in txn.own.get(&obj).into_iter().flatten() {
                    view.insert(e.clone());
                }
                for (a, o) in &self.known {
                    view.resolve(*a, *o);
                }

                let need = self
                    .config
                    .state(obj)
                    .max_final(S::event_class(&event.inv, &event.res));
                self.metrics.view_sizes.push(view.len() as u64);
                self.req_counter += 1;
                let req = self.req_counter;
                let txn = self.current.as_mut().expect("txn in progress");
                txn.phases.insert(
                    req,
                    Phase::Writing {
                        obj,
                        event,
                        view: view.clone(),
                        entry: entry.clone(),
                        acks: BTreeSet::new(),
                        retries: 0,
                        since: ctx.now(),
                        started,
                    },
                );
                ctx.trace(TraceAction::PhaseStart {
                    obj: u64::from(obj.0),
                    req,
                    phase: PhaseKind::Write,
                });
                let cfg = self.config.state(obj).version();
                for r in self.targets(obj, req, need.max(1), false) {
                    self.send_msg(
                        ctx,
                        r,
                        Msg::WriteLog {
                            obj,
                            req,
                            log: view.clone(),
                            entry: Some(entry.clone()),
                            cfg,
                        },
                    );
                }
                ctx.set_timer(self.cfg.op_timeout, req);
                if need == 0 || self.cfg.skip_final_ack {
                    // The injected bug: declare the write complete the
                    // moment it leaves, without a single ack — the commit
                    // can now outrun its own entries.
                    self.op_complete(ctx, req);
                }
            }
        }
    }

    fn op_complete<IO: Io<Msg<S::Inv, S::Res>> + ?Sized>(&mut self, ctx: &mut IO, req: u64) {
        let Some(txn) = &mut self.current else { return };
        let Some(Phase::Writing {
            obj,
            event,
            since,
            started,
            ..
        }) = txn.phases.remove(&req)
        else {
            return;
        };
        self.metrics.final_rt.push(ctx.now() - since);
        self.metrics.op_latency.push(ctx.now() - started);
        ctx.trace(TraceAction::PhaseEnd {
            obj: u64::from(obj.0),
            req,
            phase: PhaseKind::Write,
            rtt: ctx.now() - since,
        });
        self.stats.ops_completed += 1;
        self.records.push(Record::Op {
            t: ctx.now(),
            action: txn.action,
            obj,
            event,
        });
        txn.completed += 1;
        if txn.completed < self.txns[self.cursor].ops.len() {
            self.pump(ctx);
        } else if self.cfg.commit_delay == 0 {
            self.commit_txn(ctx);
        } else {
            ctx.set_timer(self.cfg.commit_delay, TOKEN_COMMIT);
        }
    }

    fn commit_txn<IO: Io<Msg<S::Inv, S::Res>> + ?Sized>(&mut self, ctx: &mut IO) {
        let cts = self.fresh_ts(ctx);
        let Some(txn) = self.current.take() else {
            return;
        };
        self.records.push(Record::Commit {
            t: cts.counter,
            action: txn.action,
        });
        ctx.trace(TraceAction::Commit {
            action: u64::from(txn.action.0),
        });
        let outcome = ActionOutcome::Committed(cts);
        self.known.insert(txn.action, outcome);
        // The write manifest: entries appended per object. Repositories
        // fold a committed action into a checkpoint only once they hold
        // all of its entries; this is how they know the count.
        let entries: Vec<(ObjId, u32)> =
            txn.own.iter().map(|(o, v)| (*o, v.len() as u32)).collect();
        for r in self.cfg.repos.clone() {
            self.send_msg(
                ctx,
                r,
                Msg::Resolve {
                    action: txn.action,
                    outcome,
                    entries: entries.clone(),
                },
            );
        }
        self.stats.committed += 1;
        self.track_resolve(ctx, txn.action, outcome, entries);
        self.cursor += 1;
        ctx.set_timer(self.cfg.think_time.max(1), TOKEN_KICK);
    }

    /// Records a just-broadcast resolution for retransmission and arms the
    /// repair timer. No-op unless frontier repair (`resolve_retransmit` +
    /// `status_gc`) is configured.
    fn track_resolve<IO: Io<Msg<S::Inv, S::Res>> + ?Sized>(
        &mut self,
        ctx: &mut IO,
        action: ActionId,
        outcome: ActionOutcome,
        entries: Vec<(ObjId, u32)>,
    ) {
        let Some(period) = self.cfg.resolve_retransmit else {
            return;
        };
        if !self.cfg.status_gc {
            return;
        }
        self.pending_resolves
            .insert(action.0 % 100_000, (action, outcome, entries));
        if !self.retransmit_armed {
            ctx.set_timer(period.max(1), TOKEN_RETRANSMIT);
            self.retransmit_armed = true;
        }
    }

    fn abort_txn<IO: Io<Msg<S::Inv, S::Res>> + ?Sized>(&mut self, ctx: &mut IO, kind: AbortKind) {
        let Some(txn) = self.current.take() else {
            return;
        };
        self.records.push(Record::Abort {
            t: ctx.now(),
            action: txn.action,
        });
        ctx.trace(TraceAction::Abort {
            action: u64::from(txn.action.0),
            cause: match kind {
                AbortKind::Conflict => AbortCause::Conflict,
                AbortKind::Unavailable => AbortCause::Unavailable,
                AbortKind::Stale => AbortCause::StaleEpoch,
            },
        });
        self.known.insert(txn.action, ActionOutcome::Aborted);
        for r in self.cfg.repos.clone() {
            self.send_msg(
                ctx,
                r,
                Msg::Resolve {
                    action: txn.action,
                    outcome: ActionOutcome::Aborted,
                    entries: Vec::new(),
                },
            );
        }
        self.track_resolve(ctx, txn.action, ActionOutcome::Aborted, Vec::new());
        match kind {
            AbortKind::Conflict => self.stats.aborted_conflict += 1,
            AbortKind::Unavailable => self.stats.aborted_unavailable += 1,
            AbortKind::Stale => self.stats.stale_retries += 1,
        }
        // Stale-epoch aborts retry for free: the transaction did nothing
        // wrong, the ground shifted under it. Other aborts consume the
        // configured retry budget.
        let budget = match kind {
            AbortKind::Stale => Some(txn.attempts_left),
            _ if txn.attempts_left > 0 => Some(txn.attempts_left - 1),
            _ => None,
        };
        if let Some(left) = budget {
            // Re-run the same transaction as a fresh action after a
            // randomized exponential backoff (deterministic per run via
            // the simulation RNG) — symmetric deterministic delays livelock
            // under contention.
            self.retry_pending = Some(left);
            let attempt = self.cfg.txn_retries.saturating_sub(left);
            let window = 1u64 << attempt.min(5);
            let jitter = ctx.rand_below(window.max(1));
            let backoff = self.cfg.think_time.max(1) * (1 + jitter) + u64::from(ctx.me() % 7);
            ctx.set_timer(backoff, TOKEN_KICK);
        } else {
            self.cursor += 1;
            ctx.set_timer(self.cfg.think_time.max(1), TOKEN_KICK);
        }
    }

    /// Handles one delivered message, then flushes any batched sends it
    /// produced (the end-of-event flush boundary).
    pub fn handle<IO: Io<Msg<S::Inv, S::Res>> + ?Sized>(
        &mut self,
        ctx: &mut IO,
        from: ProcId,
        msg: Msg<S::Inv, S::Res>,
    ) {
        self.handle_inner(ctx, from, msg);
        self.flush_batch(ctx);
    }

    fn handle_inner<IO: Io<Msg<S::Inv, S::Res>> + ?Sized>(
        &mut self,
        ctx: &mut IO,
        from: ProcId,
        msg: Msg<S::Inv, S::Res>,
    ) {
        match msg {
            Msg::Batch(msgs) => {
                // Unwrap a batch envelope: the payloads apply in order, as
                // if delivered back-to-back in one event.
                for m in msgs {
                    self.handle_inner(ctx, from, m);
                }
            }
            Msg::LogReply { obj, req, delta } => {
                self.metrics.log_entries_shipped += delta.entries.len() as u64;
                self.metrics.reply_payload.push(delta.payload_entries());
                // Advance the mirror first, even for stale replies — the
                // data was shipped for a frontier this mirror announced,
                // and dropping it would desynchronize the frontier.
                if self.cfg.delta_shipping {
                    let gc = self.cfg.compact_logs;
                    self.mirrors
                        .entry((obj, from))
                        .or_insert_with(|| VersionedLog::with_gc(gc))
                        .apply_delta(&delta);
                }
                let assembled = {
                    let Some(txn) = &mut self.current else { return };
                    let Some(Phase::Reading {
                        inv,
                        merged,
                        replied,
                        ..
                    }) = txn.phases.get_mut(&req)
                    else {
                        return; // stale reply
                    };
                    if self.cfg.delta_shipping {
                        // The mirror *is* the site's log at serving time;
                        // merging it is what merging the full reply did.
                        if let Some(m) = self.mirrors.get(&(obj, from)) {
                            merged.merge(m.log());
                        }
                    } else {
                        merged.merge(&delta.to_log());
                    }
                    replied.insert(from);
                    let state = self.config.state(obj);
                    // Joint-aware: during a reconfiguration the reply set
                    // must contain an initial quorum of both configs.
                    if self.cfg.weaken_read_quorum {
                        let mut padded = replied.clone();
                        if let Some(extra) =
                            state.members().into_iter().find(|m| !padded.contains(m))
                        {
                            padded.insert(extra);
                        }
                        state.initial_ok(S::op_class(inv), &padded)
                    } else {
                        state.initial_ok(S::op_class(inv), replied)
                    }
                };
                if assembled {
                    let Some(txn) = &mut self.current else { return };
                    let Some(Phase::Reading {
                        op_idx,
                        obj,
                        inv,
                        merged,
                        since,
                        started,
                        ..
                    }) = txn.phases.remove(&req)
                    else {
                        return;
                    };
                    self.metrics.initial_rt.push(ctx.now() - since);
                    ctx.trace(TraceAction::PhaseEnd {
                        obj: u64::from(obj.0),
                        req,
                        phase: PhaseKind::Read,
                        rtt: ctx.now() - since,
                    });
                    txn.ready.insert(
                        op_idx,
                        ReadyRead {
                            obj,
                            inv,
                            merged,
                            started,
                        },
                    );
                    self.drain_ready(ctx);
                }
            }
            Msg::WriteAck {
                obj: _,
                req,
                conflict,
            } => {
                let verdict = {
                    let Some(txn) = &mut self.current else { return };
                    let Some(Phase::Writing {
                        obj, event, acks, ..
                    }) = txn.phases.get_mut(&req)
                    else {
                        return; // stale ack
                    };
                    if let Some(with) = conflict {
                        // A reader depends on us: abort.
                        Some(Err((*obj, txn.action, with)))
                    } else {
                        acks.insert(from);
                        let ev = S::event_class(&event.inv, &event.res);
                        // Joint-aware: the ack set must contain a final
                        // quorum of every active configuration.
                        self.config.state(*obj).final_ok(ev, acks).then_some(Ok(()))
                    }
                };
                match verdict {
                    Some(Ok(())) => self.op_complete(ctx, req),
                    Some(Err((obj, action, with))) => {
                        ctx.trace(TraceAction::Conflict {
                            obj: u64::from(obj.0),
                            action: u64::from(action.0),
                            with: u64::from(with.0),
                            kind: ConflictKind::Reservation,
                        });
                        self.abort_txn(ctx, AbortKind::Conflict)
                    }
                    None => {}
                }
            }
            Msg::StaleConfig { req, state } => {
                // A repository refused a request because our configuration
                // is outdated. Adopt the newer state into every shard it
                // beats, then abort and retry the affected transaction
                // under it (the retry is free: reconfiguration is not the
                // application's fault).
                if state.version() > self.config.version() {
                    ctx.trace(TraceAction::ConfigAdopt {
                        epoch: state.epoch(),
                        version: state.version(),
                    });
                }
                self.config.adopt(&state);
                let live = self
                    .current
                    .as_ref()
                    .is_some_and(|t| t.phases.contains_key(&req));
                if live {
                    self.abort_txn(ctx, AbortKind::Stale);
                }
            }
            Msg::ResolveAck { action } => {
                // A repository durably recorded one of our resolutions.
                // Once every repository acked a contiguous prefix of our
                // actions, that prefix is globally durable: advance the
                // frontier and drop its resolutions from the gossip
                // backup (no reservation can still depend on them — the
                // ack proves each repository ran `drop_reservations`).
                if !self.cfg.status_gc || action.0 / 100_000 != ctx.me() {
                    return;
                }
                let seq = action.0 % 100_000;
                if seq < self.durable_next {
                    return; // already durable
                }
                self.acks_by_seq.entry(seq).or_default().insert(from);
                let full: BTreeSet<ProcId> = self.cfg.repos.iter().copied().collect();
                while self
                    .acks_by_seq
                    .get(&self.durable_next)
                    .is_some_and(|s| s.is_superset(&full))
                {
                    self.acks_by_seq.remove(&self.durable_next);
                    self.durable_next += 1;
                }
                let floor = self.durable_next;
                self.known.retain(|a, _| a.0 % 100_000 >= floor);
                self.pending_resolves.retain(|s, _| *s >= floor);
            }
            // Clients ignore repository- and reconfigurer-bound messages.
            Msg::ReadLog { .. }
            | Msg::WriteLog { .. }
            | Msg::Resolve { .. }
            | Msg::Install { .. }
            | Msg::InstallAck { .. }
            | Msg::SyncReq => {}
        }
    }

    /// Handles a timer, then flushes any batched sends it produced.
    pub fn tick<IO: Io<Msg<S::Inv, S::Res>> + ?Sized>(&mut self, ctx: &mut IO, token: u64) {
        self.tick_inner(ctx, token);
        self.flush_batch(ctx);
    }

    fn tick_inner<IO: Io<Msg<S::Inv, S::Res>> + ?Sized>(&mut self, ctx: &mut IO, token: u64) {
        if token == TOKEN_COMMIT {
            // The commit decision, delayed past the last operation.
            if self.current.as_ref().is_some_and(|t| {
                t.phases.is_empty()
                    && t.ready.is_empty()
                    && t.completed >= self.txns[self.cursor].ops.len()
            }) {
                self.commit_txn(ctx);
            }
            return;
        }
        if token == TOKEN_FLUSH {
            // Window flush: everything queued leaves now.
            self.flush_scheduled = false;
            if let Some(b) = &mut self.batcher {
                b.flush(ctx);
            }
            return;
        }
        if token == TOKEN_KICK {
            if self.current.is_none() {
                if let Some(left) = self.retry_pending.take() {
                    // Restart the current (aborted) transaction.
                    let action = ActionId(ctx.me() * 100_000 + self.action_seq);
                    self.action_seq += 1;
                    let begin_ts = self.fresh_ts(ctx);
                    self.records.push(Record::Begin {
                        t: begin_ts.counter,
                        action,
                    });
                    self.metrics.txn_reruns += 1;
                    ctx.trace(TraceAction::TxnBegin {
                        action: u64::from(action.0),
                    });
                    self.current = Some(Txn {
                        action,
                        begin_ts,
                        next_op: 0,
                        evaluated: 0,
                        completed: 0,
                        own: BTreeMap::new(),
                        phases: BTreeMap::new(),
                        ready: BTreeMap::new(),
                        attempts_left: left,
                    });
                    self.pump(ctx);
                } else {
                    self.start_next_txn(ctx);
                }
            }
            return;
        }
        if token == TOKEN_RETRANSMIT {
            // Frontier repair: re-send every pending resolution to exactly
            // the repositories whose ack is still missing. Safe because
            // `Resolve` application is idempotent and repositories re-ack
            // every receipt (see DESIGN §3.17).
            self.retransmit_armed = false;
            let floor = self.durable_next;
            self.pending_resolves.retain(|s, _| *s >= floor);
            if self.pending_resolves.is_empty() {
                self.stall_streak = 0;
                return;
            }
            if self.durable_next == self.frontier_at_last_fire {
                self.metrics.frontier_stalls += 1;
                self.stall_streak += 1;
            } else {
                self.stall_streak = 0;
            }
            self.frontier_at_last_fire = self.durable_next;
            if self.stall_streak >= RETRANSMIT_GIVE_UP {
                // The missing repository is not coming back; stop repairing
                // so the process can quiesce. GC stays stalled from here —
                // a liveness sacrifice, never a safety one.
                self.pending_resolves.clear();
                return;
            }
            let full: BTreeSet<ProcId> = self.cfg.repos.iter().copied().collect();
            let resends: Vec<(PendingResolve, Vec<ProcId>)> = self
                .pending_resolves
                .iter()
                .map(|(seq, (a, o, e))| {
                    let missing: Vec<ProcId> = match self.acks_by_seq.get(seq) {
                        Some(acked) => full
                            .iter()
                            .copied()
                            .filter(|r| !acked.contains(r))
                            .collect(),
                        None => full.iter().copied().collect(),
                    };
                    ((*a, *o, e.clone()), missing)
                })
                .collect();
            for ((action, outcome, entries), missing) in resends {
                for r in missing {
                    self.metrics.resolve_retransmits += 1;
                    self.send_msg(
                        ctx,
                        r,
                        Msg::Resolve {
                            action,
                            outcome,
                            entries: entries.clone(),
                        },
                    );
                }
            }
            let period = self.cfg.resolve_retransmit.unwrap_or(1).max(1);
            ctx.set_timer(period, TOKEN_RETRANSMIT);
            self.retransmit_armed = true;
            return;
        }
        // Phase timeout: if the token matches a live request, retry or
        // give up.
        let retry = {
            let Some(txn) = &mut self.current else { return };
            match txn.phases.get_mut(&token) {
                Some(Phase::Reading { retries, .. }) => {
                    *retries += 1;
                    if *retries > self.cfg.max_phase_retries {
                        None
                    } else {
                        Some(RetryWhat::Read)
                    }
                }
                Some(Phase::Writing { retries, .. }) => {
                    *retries += 1;
                    if *retries > self.cfg.max_phase_retries {
                        None
                    } else {
                        Some(RetryWhat::Write)
                    }
                }
                None => return, // stale timer
            }
        };
        match retry {
            None => self.abort_txn(ctx, AbortKind::Unavailable),
            Some(RetryWhat::Read) => {
                self.metrics.phase_retries += 1;
                let Some(txn) = &self.current else { return };
                let Some(Phase::Reading { obj, inv, .. }) = txn.phases.get(&token) else {
                    return;
                };
                let req = token;
                ctx.trace(TraceAction::PhaseRetry {
                    req,
                    phase: PhaseKind::Read,
                });
                let (obj, op) = (*obj, S::op_class(inv));
                let (action, begin_ts) = (txn.action, txn.begin_ts);
                let cfg = self.config.state(obj).version();
                let durable = self.durable_frontier();
                for r in self.targets(obj, req, 0, true) {
                    let since = self.frontier(obj, r);
                    self.send_msg(
                        ctx,
                        r,
                        Msg::ReadLog {
                            obj,
                            req,
                            action,
                            begin_ts,
                            op,
                            cfg,
                            since,
                            durable,
                        },
                    );
                }
                ctx.set_timer(self.cfg.op_timeout, req);
            }
            Some(RetryWhat::Write) => {
                self.metrics.phase_retries += 1;
                let Some(txn) = &self.current else { return };
                let Some(Phase::Writing {
                    obj, view, entry, ..
                }) = txn.phases.get(&token)
                else {
                    return;
                };
                let req = token;
                ctx.trace(TraceAction::PhaseRetry {
                    req,
                    phase: PhaseKind::Write,
                });
                let (obj, view, entry) = (*obj, view.clone(), entry.clone());
                let cfg = self.config.state(obj).version();
                for r in self.targets(obj, req, 0, true) {
                    self.send_msg(
                        ctx,
                        r,
                        Msg::WriteLog {
                            obj,
                            req,
                            log: view.clone(),
                            entry: Some(entry.clone()),
                            cfg,
                        },
                    );
                }
                ctx.set_timer(self.cfg.op_timeout, req);
            }
        }
    }

    /// Kick off the first transaction.
    pub fn start<IO: Io<Msg<S::Inv, S::Res>> + ?Sized>(&mut self, ctx: &mut IO) {
        // Stagger client start times slightly for realism.
        ctx.set_timer(1 + u64::from(ctx.me() % 5), TOKEN_KICK);
    }
}

enum RetryWhat {
    Read,
    Write,
}

enum AbortKind {
    Conflict,
    Unavailable,
    Stale,
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorumcc_core::DependencyRelation;
    use quorumcc_model::testtypes::TestQueue;

    fn client(fanout: Fanout, repos: u32) -> Client<TestQueue> {
        let cfg = ClientConfig {
            protocol: crate::protocol::Protocol::new(
                crate::protocol::Mode::Hybrid,
                DependencyRelation::new(),
            ),
            thresholds: quorumcc_quorum::ThresholdAssignment::new(repos),
            repos: (0..repos).collect(),
            op_timeout: 100,
            max_phase_retries: 1,
            think_time: 5,
            commit_delay: 0,
            txn_retries: 0,
            propagate_views: true,
            fanout,
            delta_shipping: true,
            compact_logs: false,
            weaken_read_quorum: false,
            skip_final_ack: false,
            shards: 1,
            batch: 1,
            batch_window: 0,
            shard_thresholds: Vec::new(),
            status_gc: false,
            resolve_retransmit: None,
        };
        Client::new(cfg, Vec::new())
    }

    #[test]
    fn broadcast_targets_everyone() {
        let c = client(Fanout::Broadcast, 5);
        assert_eq!(c.targets(ObjId(0), 3, 2, false), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn narrow_targets_rotate_by_request() {
        let c = client(Fanout::Narrow, 5);
        assert_eq!(c.targets(ObjId(0), 0, 2, false), vec![0, 1]);
        assert_eq!(c.targets(ObjId(0), 1, 2, false), vec![1, 2]);
        assert_eq!(c.targets(ObjId(0), 4, 2, false), vec![4, 0]);
        // Fallback broadens to everyone.
        assert_eq!(c.targets(ObjId(0), 4, 2, true), vec![0, 1, 2, 3, 4]);
        // Requests never exceed the cluster.
        assert_eq!(c.targets(ObjId(0), 0, 99, false).len(), 5);
    }

    #[test]
    fn fresh_client_has_no_records_or_stats() {
        let c = client(Fanout::Broadcast, 3);
        assert!(c.records().is_empty());
        assert_eq!(c.stats(), ClientStats::default());
    }
}
