//! Repositories: the long-term storage modules (§3.2). They merge, serve
//! and resolve logs, and hold the **read reservations** that close the
//! concurrent read/write race.
//!
//! Serving a read records a reservation for the reading action's
//! operation class, held until the action resolves. A later `WriteLog`
//! whose fresh entry belongs to a class some *other* reserved invocation
//! depends on is acknowledged with a conflict, and the writing action
//! aborts. Soundness rests on the quorum arithmetic: `ti + tf > n` makes
//! the writer's counted ack set intersect every reader's counted reply
//! set, so one repository always witnesses the pair in some order — either
//! the reader saw the entry, or the writer hears about the reservation.

use crate::driver::Io;
use crate::messages::{Batcher, Msg};
use crate::protocol::{Mode, Protocol};
use crate::reconfig::ConfigState;
use crate::types::{ActionOutcome, Checkpoint, CompactionConfig, ObjId, ObjectLog, VersionedLog};
use quorumcc_core::DependencyRelation;
use quorumcc_model::{ActionId, Classified};
use quorumcc_sim::trace::{ConflictKind, TraceAction};
use quorumcc_sim::{ProcId, SimTime, Timestamp};
use std::collections::{BTreeMap, BTreeSet};

/// Timer token repositories use for anti-entropy rounds.
const TOKEN_ANTI_ENTROPY: u64 = u64::MAX - 1;

/// What a repository's storage keeps across a crash.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Durability {
    /// Stable storage (the paper's model): logs, reservations and
    /// manifests all survive; a crash only silences the site for a while.
    #[default]
    Stable,
    /// In-memory state is lost on crash. With `wal: true` the repository
    /// mirrors every *acked* mutation (quorum-counted writes, resolutions,
    /// checkpoints) to a write-ahead log and recovers by replaying it;
    /// with `wal: false` it comes back amnesiac and relies on peers alone
    /// — deliberately unsafe, for exercising the safety oracle.
    Volatile {
        /// Whether a write-ahead mirror is kept.
        wal: bool,
    },
}

/// Health counters a repository accumulates for telemetry and the safety
/// oracle. The version/epoch shadows behind the regression counts live
/// *outside* the failure model — they survive crashes by design, so the
/// oracle can observe amnesia the protocol failed to mask.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepoCounters {
    /// Stale read frontiers answered with a full log transfer.
    pub full_log_fallbacks: u64,
    /// Crash recoveries performed (volatile sites only).
    pub recoveries: u64,
    /// Times an object's version counter fell below its all-time high.
    pub version_regressions: u64,
    /// Times the configuration version fell below its all-time high.
    pub config_regressions: u64,
    /// Batch envelopes flushed (0 when batching is off).
    pub batches_flushed: u64,
    /// Status records crossing the wire in either direction — `LogReply`
    /// deltas served to readers plus the statuses carried by arriving
    /// `WriteLog` views (clients push their whole `known` map with every
    /// view). This is the gossip weight scoped shipping and status GC
    /// exist to bound: without GC a client's `known` map grows with its
    /// lifetime, so every pushed view re-ships its entire history.
    pub statuses_shipped: u64,
    /// Status records dropped by status GC (tombstones below a durable
    /// resolution frontier).
    pub statuses_gcd: u64,
    /// High-water of the repository's total status footprint (per-log
    /// statuses plus the scoped resolution table), sampled at resolves.
    pub status_table_peak: u64,
}

/// One read reservation.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Reservation {
    begin_ts: Timestamp,
    ops: Vec<&'static str>,
}

/// A repository holding per-object logs and reservations.
///
/// Crash behaviour: the simulator drops messages to crashed sites. Under
/// [`Durability::Stable`] (the default, the paper's model) logs and
/// reservations model stable storage, so a recovered repository serves its
/// pre-crash state. Under [`Durability::Volatile`] the in-memory state is
/// discarded at recovery and rebuilt from the write-ahead mirror (if kept)
/// plus [`Msg::SyncReq`] state transfer from peers — see
/// [`Self::on_recover`].
#[derive(Debug, Clone)]
pub struct Repository<S: Classified> {
    mode: Mode,
    rel: DependencyRelation,
    logs: BTreeMap<ObjId, VersionedLog<S::Inv, S::Res>>,
    reservations: BTreeMap<ObjId, BTreeMap<ActionId, Reservation>>,
    /// Reverse index over `reservations`, keyed `(action, obj)`: dropping
    /// a resolved action's reservations is a prefix range scan instead of
    /// a walk over every object's map. Pure speed — shipped logs carry
    /// every status they know, so the resolved-action sweep in `WriteLog`
    /// would otherwise cost O(statuses x objects) per message.
    reserved_index: BTreeSet<(ActionId, ObjId)>,
    peers: Vec<ProcId>,
    anti_entropy: Option<SimTime>,
    /// Storage durability class (chaos layer).
    durability: Durability,
    /// Write-ahead mirrors, maintained only under `Volatile { wal: true }`:
    /// acked mutations are applied to the mirror as well as the live log,
    /// and recovery restores the mirror.
    wal: BTreeMap<ObjId, VersionedLog<S::Inv, S::Res>>,
    /// Per-object version high-waters recorded with the WAL; recovery
    /// advances each restored log past its high-water so client frontiers
    /// never regress (stale ones fall back to full transfers instead).
    durable_versions: BTreeMap<ObjId, u64>,
    /// Oracle shadow (survives crashes by design): per-object all-time
    /// version high-waters, for regression detection.
    shadow_versions: BTreeMap<ObjId, u64>,
    /// Oracle shadow: the highest configuration version ever held.
    max_config_version: u64,
    counters: RepoCounters,
    /// The configuration state this repository enforces; `None` (the
    /// standalone default) admits every version — reconfiguration-aware
    /// clusters always install one.
    state: Option<ConfigState>,
    /// Committed-prefix compaction, when enabled.
    compaction: Option<CompactionConfig>,
    /// Write manifests learned from commit `Resolve`s: action → entries
    /// appended per object. Folding a committed action requires its
    /// manifest (to know the local entry set is complete).
    manifests: BTreeMap<ActionId, Vec<(ObjId, u32)>>,
    /// Outgoing send coalescing (`None` = unbatched, byte-identical to the
    /// pre-batching repository). When a [`Msg::Batch`] of k reads arrives,
    /// the k replies leave as one envelope.
    batcher: Option<Batcher<S::Inv, S::Res>>,
    /// Per-envelope payload counts, drained by telemetry harvest.
    batch_fills: Vec<u64>,
    /// Scoped status planting: resolutions land only in logs the action
    /// touched (plus the [`Self::resolutions`] table for late entries),
    /// instead of in every object's log.
    scoped_statuses: bool,
    /// Status GC sweep hysteresis: `Some(batch)` enables GC, sweeping once
    /// the durable frontiers advanced by `batch` resolutions in total
    /// (each sweep fences affected readers into one full transfer, so
    /// batching keeps the delta-shipping win intact). `None` disables GC.
    gc_batch: Option<u64>,
    /// Repository-wide resolution table, kept under scoped planting: a
    /// late-arriving entry of an already-resolved action finds its status
    /// here instead of having it pre-planted in every log.
    resolutions: BTreeMap<ActionId, ActionOutcome>,
    /// Per-client durable resolution frontiers, learned from the
    /// `durable` field piggybacked on [`Msg::ReadLog`]: every action of
    /// that client with sequence ≤ frontier is resolved *and* the
    /// resolution was acked by every member — its tombstones are
    /// collectable.
    frontiers: BTreeMap<ProcId, u64>,
    /// Frontier values at the last GC sweep (hysteresis accounting).
    swept: BTreeMap<ProcId, u64>,
}

impl<S: Classified> Repository<S> {
    /// An empty repository enforcing `rel` under `mode`.
    pub fn new(mode: Mode, rel: DependencyRelation) -> Self {
        Repository {
            mode,
            rel,
            logs: BTreeMap::new(),
            reservations: BTreeMap::new(),
            reserved_index: BTreeSet::new(),
            peers: Vec::new(),
            anti_entropy: None,
            durability: Durability::Stable,
            wal: BTreeMap::new(),
            durable_versions: BTreeMap::new(),
            shadow_versions: BTreeMap::new(),
            max_config_version: 0,
            counters: RepoCounters::default(),
            state: None,
            compaction: None,
            manifests: BTreeMap::new(),
            batcher: None,
            batch_fills: Vec::new(),
            scoped_statuses: false,
            gc_batch: None,
            resolutions: BTreeMap::new(),
            frontiers: BTreeMap::new(),
            swept: BTreeMap::new(),
        }
    }

    /// Configures the gossip-scaling knobs: scoped status planting and
    /// status GC (`gc_batch` resolutions of frontier advance per sweep;
    /// `None` disables GC). Both default off — byte-identical to the
    /// full-shipping repository.
    pub fn with_gossip(mut self, scoped: bool, gc_batch: Option<u64>) -> Self {
        self.scoped_statuses = scoped;
        self.gc_batch = gc_batch.map(|b| b.max(1));
        self
    }

    /// Enables outgoing send coalescing with the given envelope cap
    /// (`cap <= 1` disables it — byte-identical to the seed repository).
    pub fn with_batch(mut self, cap: u32) -> Self {
        self.batcher = (cap > 1).then(|| Batcher::new(cap as usize));
        self
    }

    /// Sets the storage durability class (default [`Durability::Stable`]).
    pub fn with_durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// Sets the peer set used for recovery state transfer. (Also set as a
    /// side effect of [`Self::with_anti_entropy`].)
    pub fn with_peers(mut self, peers: Vec<ProcId>) -> Self {
        self.peers = peers;
        self
    }

    /// The storage durability class.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// Health counters for telemetry and the safety oracle.
    pub fn counters(&self) -> RepoCounters {
        self.counters
    }

    /// Per-envelope payload counts accumulated so far (telemetry harvest).
    pub fn batch_fills(&self) -> &[u64] {
        &self.batch_fills
    }

    /// Routes an outgoing message through the batcher when one is active.
    fn send_msg<IO: Io<Msg<S::Inv, S::Res>> + ?Sized>(
        &mut self,
        ctx: &mut IO,
        to: ProcId,
        msg: Msg<S::Inv, S::Res>,
    ) {
        match &mut self.batcher {
            Some(b) => b.push(ctx, to, msg),
            None => ctx.send(to, msg),
        }
    }

    /// Flushes queued sends (call at the end of each event handler) and
    /// syncs the batching counters.
    fn flush_batch<IO: Io<Msg<S::Inv, S::Res>> + ?Sized>(&mut self, ctx: &mut IO) {
        if let Some(b) = &mut self.batcher {
            b.flush(ctx);
            self.counters.batches_flushed = b.flushed();
            self.batch_fills.extend(b.take_fills());
        }
    }

    /// Enables committed-prefix compaction (and aborted-entry GC): once
    /// every action below a lag-guarded horizon is resolved and fully
    /// present, its entries fold into a checkpoint. Requires prompt
    /// broadcast delivery to stay exact — see the module docs of
    /// [`crate::types`] and DESIGN §3.11.
    pub fn with_compaction(mut self, cc: CompactionConfig) -> Self {
        self.compaction = Some(cc);
        self
    }

    /// Sets the bootstrap configuration state; quorum-bearing messages
    /// carrying an older version are refused with [`Msg::StaleConfig`].
    pub fn with_config(mut self, state: ConfigState) -> Self {
        self.state = Some(state);
        self
    }

    /// The current configuration version (0 when configuration-unaware).
    fn version(&self) -> u64 {
        self.state.as_ref().map_or(0, ConfigState::version)
    }

    /// Admits or refuses a quorum-bearing request: on a stale version,
    /// traces the refusal and pushes the current state back to the sender.
    fn admit<IO: Io<Msg<S::Inv, S::Res>> + ?Sized>(
        &self,
        ctx: &mut IO,
        from: ProcId,
        req: u64,
        cfg: u64,
    ) -> bool {
        let Some(state) = &self.state else {
            return true;
        };
        if state.admit(cfg).is_ok() {
            return true;
        }
        ctx.trace(TraceAction::StaleEpoch {
            seen: cfg,
            current: state.version(),
        });
        ctx.send(
            from,
            Msg::StaleConfig {
                req,
                state: state.clone(),
            },
        );
        false
    }

    /// Enables periodic anti-entropy: every `interval` ticks the
    /// repository pushes its logs to one random peer. Heals divergence
    /// left by narrow quorums, partitions, and lost messages.
    pub fn with_anti_entropy(mut self, peers: Vec<ProcId>, interval: SimTime) -> Self {
        self.peers = peers;
        self.anti_entropy = Some(interval.max(1));
        self
    }

    /// Arms the first anti-entropy timer (call from `on_start`).
    pub fn start<IO: Io<Msg<S::Inv, S::Res>> + ?Sized>(&mut self, ctx: &mut IO) {
        if let Some(iv) = self.anti_entropy {
            // Desynchronize rounds across repositories.
            ctx.set_timer(iv + u64::from(ctx.me() % 5), TOKEN_ANTI_ENTROPY);
        }
    }

    /// Handles a timer (anti-entropy rounds).
    pub fn tick<IO: Io<Msg<S::Inv, S::Res>> + ?Sized>(&mut self, ctx: &mut IO, token: u64) {
        if token != TOKEN_ANTI_ENTROPY {
            return;
        }
        let Some(iv) = self.anti_entropy else { return };
        let peers: Vec<ProcId> = self
            .peers
            .iter()
            .copied()
            .filter(|p| *p != ctx.me())
            .collect();
        if !peers.is_empty() {
            let peer = peers[ctx.rand_below(peers.len() as u64) as usize];
            ctx.trace(TraceAction::AntiEntropy { peer });
            let cfg = self.version();
            let msgs: Vec<Msg<S::Inv, S::Res>> = self
                .logs
                .iter()
                .map(|(obj, vlog)| Msg::WriteLog {
                    obj: *obj,
                    req: 0, // repositories ignore the ack they trigger
                    log: vlog.log().clone(),
                    entry: None,
                    cfg,
                })
                .collect();
            for m in msgs {
                self.send_msg(ctx, peer, m);
            }
        }
        ctx.set_timer(iv, TOKEN_ANTI_ENTROPY);
        self.flush_batch(ctx);
    }

    /// The log stored for `obj` (empty default).
    pub fn log(&self, obj: ObjId) -> ObjectLog<S::Inv, S::Res> {
        self.logs
            .get(&obj)
            .map(|v| v.log().clone())
            .unwrap_or_default()
    }

    /// The versioned log for `obj`, created on first touch (with
    /// aborted-entry GC when compaction is enabled, and scoped status
    /// planting when configured).
    fn vlog(&mut self, obj: ObjId) -> &mut VersionedLog<S::Inv, S::Res> {
        let gc = self.compaction.is_some();
        let scoped = self.scoped_statuses;
        self.logs.entry(obj).or_insert_with(|| {
            let mut v = VersionedLog::with_gc(gc);
            v.set_scoped(scoped);
            v
        })
    }

    /// Splits an action id into its issuing client and per-client
    /// sequence number (the front-end encoding: `client * 100_000 + seq`,
    /// with sequences issued from 0 in strict order).
    fn action_parts(action: ActionId) -> (ProcId, u64) {
        (action.0 / 100_000, u64::from(action.0 % 100_000))
    }

    /// Whether `action` lies below its client's durable resolution
    /// frontier — resolved, globally acknowledged, tombstones collectable.
    /// Frontiers are counts (`seq < f` is durable), so a frontier of 0
    /// means "nothing collectable" and sequence 0 itself is reachable.
    fn is_stale(&self, action: ActionId) -> bool {
        let (client, seq) = Self::action_parts(action);
        self.frontiers.get(&client).is_some_and(|f| seq < *f)
    }

    /// Records a client's advertised durable frontier and runs a GC sweep
    /// once the accumulated advance crosses the configured batch.
    fn note_frontier(&mut self, client: ProcId, durable: u64) {
        let Some(batch) = self.gc_batch else { return };
        let cur = self.frontiers.entry(client).or_insert(0);
        if durable <= *cur {
            return;
        }
        *cur = durable;
        let pending: u64 = self
            .frontiers
            .iter()
            .map(|(c, f)| f.saturating_sub(*self.swept.get(c).unwrap_or(&0)))
            .sum();
        if pending >= batch {
            self.swept.clone_from(&self.frontiers);
            self.sweep_gc();
        }
    }

    /// Drops every status tombstone below the durable frontiers, from the
    /// per-object logs and the scoped resolution table. Logs that lost
    /// anything fence their readers into one full transfer (see
    /// [`VersionedLog::gc_below`]).
    fn sweep_gc(&mut self) {
        let frontiers = &self.frontiers;
        let stale = |a: ActionId| {
            let (client, seq) = Self::action_parts(a);
            frontiers.get(&client).is_some_and(|f| seq < *f)
        };
        let mut dropped = 0;
        for vlog in self.logs.values_mut() {
            dropped += vlog.gc_below(stale);
        }
        if self.wal_active() {
            for w in self.wal.values_mut() {
                w.gc_below(stale);
            }
        }
        let before = self.resolutions.len();
        self.resolutions.retain(|a, _| !stale(*a));
        dropped += (before - self.resolutions.len()) as u64;
        self.counters.statuses_gcd += dropped;
    }

    /// Strips below-frontier content from an incoming view (and its fresh
    /// entry) unless it is known committed. Actions below a durable
    /// frontier are resolved everywhere and their tombstones may already
    /// be collected here; without this filter a stale write-back or a
    /// duplicated frame would resurrect an aborted entry as a phantom
    /// `Active` lock that nothing can ever clear again.
    fn sanitize_intake(
        &self,
        obj: ObjId,
        log: &mut ObjectLog<S::Inv, S::Res>,
        entry: &mut Option<crate::types::LogEntry<S::Inv, S::Res>>,
    ) {
        if self.frontiers.is_empty() {
            return;
        }
        let mut acts: BTreeSet<ActionId> = log.entries().map(|e| e.action).collect();
        acts.extend(log.statuses().map(|(a, _)| a));
        if let Some(e) = entry.as_ref() {
            acts.insert(e.action);
        }
        for a in acts {
            if !self.is_stale(a) {
                continue;
            }
            let committed = matches!(log.status(a), ActionOutcome::Committed(_))
                || self
                    .logs
                    .get(&obj)
                    .is_some_and(|v| matches!(v.log().status(a), ActionOutcome::Committed(_)))
                || matches!(self.resolutions.get(&a), Some(ActionOutcome::Committed(_)));
            if !committed {
                log.remove_action(a);
                if entry.as_ref().is_some_and(|e| e.action == a) {
                    *entry = None;
                }
            }
        }
    }

    /// Whether a write-ahead mirror is being kept.
    fn wal_active(&self) -> bool {
        matches!(self.durability, Durability::Volatile { wal: true })
    }

    /// Records `obj`'s current version in the WAL high-water (when one is
    /// kept) and in the crash-surviving shadow, counting a regression when
    /// the live counter fell below the shadow.
    fn note_version(&mut self, obj: ObjId) {
        let v = self.logs.get(&obj).map_or(0, VersionedLog::version);
        if self.wal_active() {
            self.durable_versions.insert(obj, v);
        }
        let hw = self.shadow_versions.entry(obj).or_insert(0);
        if v < *hw {
            self.counters.version_regressions += 1;
        } else {
            *hw = v;
        }
    }

    /// Records the configuration version against its crash-surviving
    /// shadow, counting a regression when it fell below the all-time high.
    fn note_config_version(&mut self) {
        let v = self.version();
        if v < self.max_config_version {
            self.counters.config_regressions += 1;
        } else {
            self.max_config_version = v;
        }
    }

    /// Crash-recovery hook, called by the engine when a crash interval
    /// ends. [`Durability::Stable`] sites kept everything and do nothing.
    /// Volatile sites lost their in-memory state: with a WAL they restore
    /// the write-ahead mirror and advance each log past its durable
    /// version high-water, so a client holding a pre-crash frontier falls
    /// back to a full transfer instead of being served an empty delta;
    /// without one they come back amnesiac (and the oracle's shadow
    /// counters record the regression). Either way they then ask every
    /// peer for state transfer with [`Msg::SyncReq`].
    pub fn on_recover<IO: Io<Msg<S::Inv, S::Res>> + ?Sized>(&mut self, ctx: &mut IO) {
        let Durability::Volatile { wal } = self.durability else {
            return;
        };
        self.counters.recoveries += 1;
        if wal {
            // Reservations and manifests ride in the write-ahead manifest
            // too: both are recorded before the mutation they guard acks.
            self.logs = self.wal.clone();
            let scoped = self.scoped_statuses;
            for v in self.logs.values_mut() {
                v.set_scoped(scoped);
            }
            for (obj, v) in self.durable_versions.clone() {
                self.vlog(obj).advance_version(v);
            }
        } else {
            self.logs.clear();
            self.reservations.clear();
            self.reserved_index.clear();
            self.manifests.clear();
        }
        let objs: Vec<ObjId> = self.shadow_versions.keys().copied().collect();
        for obj in objs {
            self.note_version(obj);
        }
        self.note_config_version();
        let me = ctx.me();
        for peer in self.peers.clone() {
            if peer != me {
                ctx.send(peer, Msg::SyncReq);
            }
        }
    }

    /// Handles one message, replying through `ctx`, then flushes any
    /// coalesced replies (a [`Msg::Batch`] of k reads answers with one
    /// envelope of k replies).
    pub fn handle<IO: Io<Msg<S::Inv, S::Res>> + ?Sized>(
        &mut self,
        ctx: &mut IO,
        from: ProcId,
        msg: Msg<S::Inv, S::Res>,
    ) {
        self.handle_inner(ctx, from, msg);
        self.flush_batch(ctx);
    }

    fn handle_inner<IO: Io<Msg<S::Inv, S::Res>> + ?Sized>(
        &mut self,
        ctx: &mut IO,
        from: ProcId,
        msg: Msg<S::Inv, S::Res>,
    ) {
        match msg {
            Msg::Batch(msgs) => {
                // Unwrap in order; the wrapper flushes once for the whole
                // envelope, so replies coalesce back into one envelope.
                for m in msgs {
                    self.handle_inner(ctx, from, m);
                }
            }
            Msg::ReadLog {
                obj,
                req,
                action,
                begin_ts,
                op,
                cfg,
                since,
                durable,
            } => {
                if !self.admit(ctx, from, req, cfg) {
                    return;
                }
                if durable > 0 {
                    self.note_frontier(from, durable);
                }
                // A read for an action below its own client's durable
                // frontier is a duplicated frame: the action resolved long
                // ago and nothing will ever clear a reservation recorded
                // for it now (the tombstone it relied on is collectable).
                if !self.is_stale(action) {
                    let slot = self
                        .reservations
                        .entry(obj)
                        .or_default()
                        .entry(action)
                        .or_insert(Reservation {
                            begin_ts,
                            ops: Vec::new(),
                        });
                    if !slot.ops.contains(&op) {
                        slot.ops.push(op);
                    }
                    self.reserved_index.insert((action, obj));
                    ctx.trace(TraceAction::Reserve {
                        obj: u64::from(obj.0),
                        action: u64::from(action.0),
                    });
                }
                // Zero-copy delta assembly: compute the reply as borrowed
                // slices into the versioned log's journal, and clone once,
                // at the last moment, to materialize the wire message.
                let vlog = self.vlog(obj);
                let delta_ref = vlog.delta_since_ref(since);
                let full = delta_ref.full;
                let delta = delta_ref.to_delta();
                self.counters.statuses_shipped += delta.statuses.len() as u64;
                if full && since > 0 {
                    // The reader's frontier fell off the change journal —
                    // correct but a bandwidth cliff; warn and count it.
                    self.counters.full_log_fallbacks += 1;
                    ctx.trace(TraceAction::FullLogFallback {
                        obj: u64::from(obj.0),
                        since,
                    });
                }
                self.send_msg(ctx, from, Msg::LogReply { obj, req, delta });
            }
            Msg::WriteLog {
                obj,
                req,
                mut log,
                mut entry,
                cfg,
            } => {
                // Entry-carrying writes are quorum-counted and must be
                // current; entry-less propagation is a CRDT-safe merge and
                // is always welcome (anti-entropy heals across epochs).
                if entry.is_some() && !self.admit(ctx, from, req, cfg) {
                    return;
                }
                self.counters.statuses_shipped += log.status_count() as u64;
                if self.gc_batch.is_some() {
                    self.sanitize_intake(obj, &mut log, &mut entry);
                }
                let conflict = entry.as_ref().and_then(|e| self.conflicting_reader(obj, e));
                if let (Some(with), Some(e)) = (conflict, entry.as_ref()) {
                    ctx.trace(TraceAction::Conflict {
                        obj: u64::from(obj.0),
                        action: u64::from(e.action.0),
                        with: u64::from(with.0),
                        kind: ConflictKind::Reservation,
                    });
                }
                // Acked (entry-carrying) writes are what front-ends count
                // toward final quorums, so they are exactly what the
                // write-ahead mirror must retain — including the merged
                // view, whose transitive entries PROM-mode reads rely on.
                // Entry-less gossip merges stay volatile.
                if entry.is_some() && self.wal_active() {
                    let scoped = self.scoped_statuses;
                    let w = self.wal.entry(obj).or_insert_with(|| {
                        let mut v = VersionedLog::default();
                        v.set_scoped(scoped);
                        v
                    });
                    w.merge(&log);
                    if let Some(e) = entry.clone() {
                        w.insert(e);
                    }
                }
                self.vlog(obj).merge(&log);
                if let Some(e) = entry {
                    self.vlog(obj).insert(e);
                }
                // Scoped planting: a just-merged entry of an action that
                // resolved before it arrived finds its status in the
                // resolution table (the per-log plant was skipped because
                // the log was untouched back then).
                if self.scoped_statuses && !self.resolutions.is_empty() {
                    let candidates: Vec<ActionId> = {
                        let l = self.vlog(obj).log();
                        l.entries()
                            .map(|e| e.action)
                            .filter(|a| l.status(*a) == ActionOutcome::Active)
                            .collect()
                    };
                    let late: Vec<(ActionId, ActionOutcome)> = candidates
                        .into_iter()
                        .filter_map(|a| self.resolutions.get(&a).map(|o| (a, *o)))
                        .collect();
                    for (a, o) in late {
                        self.vlog(obj).resolve(a, o);
                    }
                }
                // Resolutions gossip through merged views; a lost Resolve
                // broadcast must not leave reservations stuck forever.
                let resolved: Vec<ActionId> = log.resolved_actions().collect();
                for a in resolved {
                    self.drop_reservations(a);
                }
                self.maybe_compact(obj, ctx.now());
                self.note_version(obj);
                self.send_msg(ctx, from, Msg::WriteAck { obj, req, conflict });
            }
            Msg::Resolve {
                action,
                outcome,
                entries,
            } => {
                // Commit manifests unlock folding; aborted entries are
                // garbage regardless, so aborts carry none.
                if matches!(outcome, ActionOutcome::Committed(_)) && !entries.is_empty() {
                    self.manifests.insert(action, entries);
                }
                // Under scoped shipping the per-log plants below self-filter
                // to touched logs; the table serves entries arriving later.
                if self.scoped_statuses && outcome.is_resolved() {
                    self.resolutions.insert(action, outcome);
                }
                for vlog in self.logs.values_mut() {
                    vlog.resolve(action, outcome);
                }
                if self.wal_active() {
                    for w in self.wal.values_mut() {
                        w.resolve(action, outcome);
                    }
                }
                if self.gc_batch.is_some() && outcome.is_resolved() {
                    self.send_msg(ctx, from, Msg::ResolveAck { action });
                }
                let total = self.resolutions.len()
                    + self
                        .logs
                        .values()
                        .map(|v| v.log().status_count())
                        .sum::<usize>();
                self.counters.status_table_peak = self.counters.status_table_peak.max(total as u64);
                let objs: Vec<ObjId> = self.logs.keys().copied().collect();
                if outcome.is_resolved() {
                    self.drop_reservations(action);
                    for obj in objs.iter().copied() {
                        self.maybe_compact(obj, ctx.now());
                    }
                }
                for obj in objs {
                    self.note_version(obj);
                }
            }
            Msg::Install { req, state } => {
                let newer = state.version() > self.version();
                if newer {
                    ctx.trace(TraceAction::ConfigAdopt {
                        epoch: state.epoch(),
                        version: state.version(),
                    });
                    let stable_members = match &state {
                        ConfigState::Stable(c) => Some(c.members.clone()),
                        ConfigState::Joint { .. } => None,
                    };
                    self.state = Some(state);
                    // Committing a stable config triggers state transfer:
                    // push logs to the new membership so freshly added
                    // members catch up without waiting for anti-entropy.
                    if let Some(members) = stable_members {
                        if !self.logs.is_empty() {
                            let cfg = self.version();
                            let me = ctx.me();
                            let logs: Vec<_> = self
                                .logs
                                .iter()
                                .map(|(obj, vlog)| (*obj, vlog.log().clone()))
                                .collect();
                            for peer in members.into_iter().filter(|p| *p != me) {
                                for (obj, log) in &logs {
                                    // Compaction keeps this transfer
                                    // bounded: the checkpoint rides inside
                                    // the log in place of its folded prefix.
                                    self.send_msg(
                                        ctx,
                                        peer,
                                        Msg::WriteLog {
                                            obj: *obj,
                                            req: 0,
                                            log: log.clone(),
                                            entry: None,
                                            cfg,
                                        },
                                    );
                                }
                            }
                        }
                    }
                }
                self.note_config_version();
                ctx.send(
                    from,
                    Msg::InstallAck {
                        req,
                        version: self.version(),
                    },
                );
            }
            Msg::SyncReq => {
                // A recovering peer asks for state transfer: push every
                // object as entry-less propagation (CRDT-safe merges, the
                // same shape anti-entropy uses).
                ctx.trace(TraceAction::AntiEntropy { peer: from });
                let cfg = self.version();
                let msgs: Vec<Msg<S::Inv, S::Res>> = self
                    .logs
                    .iter()
                    .map(|(obj, vlog)| Msg::WriteLog {
                        obj: *obj,
                        req: 0,
                        log: vlog.log().clone(),
                        entry: None,
                        cfg,
                    })
                    .collect();
                for m in msgs {
                    self.send_msg(ctx, from, m);
                }
            }
            // Repositories ignore front-end-bound messages.
            Msg::LogReply { .. }
            | Msg::WriteAck { .. }
            | Msg::InstallAck { .. }
            | Msg::ResolveAck { .. }
            | Msg::StaleConfig { .. } => {}
        }
    }

    /// Whether another action holds a reservation whose invocation depends
    /// on the class of the fresh entry `e`.
    ///
    /// Static mode exempts readers that began *before* the writer: they
    /// serialize before it and never needed to see it. Hybrid and dynamic
    /// readers commit after the writer, so every related reservation
    /// conflicts.
    fn conflicting_reader(
        &self,
        obj: ObjId,
        e: &crate::types::LogEntry<S::Inv, S::Res>,
    ) -> Option<ActionId> {
        let class = S::event_class(&e.event.inv, &e.event.res);
        let reservations = self.reservations.get(&obj)?;
        for (action, r) in reservations {
            if *action == e.action {
                continue;
            }
            if self.mode == Mode::StaticTs && r.begin_ts < e.begin_ts {
                continue;
            }
            if r.ops.iter().any(|op| self.rel.contains(op, class)) {
                return Some(*action);
            }
        }
        None
    }

    /// Removes every reservation held by `action`, via the reverse index
    /// (a no-op for the common case of an action that reserved nothing
    /// here, or whose reservations were already dropped).
    fn drop_reservations(&mut self, action: ActionId) {
        let held: Vec<ObjId> = self
            .reserved_index
            .range((action, ObjId(0))..=(action, ObjId(u16::MAX)))
            .map(|&(_, obj)| obj)
            .collect();
        for obj in held {
            self.reserved_index.remove(&(action, obj));
            if let Some(res) = self.reservations.get_mut(&obj) {
                res.remove(&action);
            }
        }
    }

    /// Folds the committed prefix of `obj`'s log into a checkpoint when it
    /// is safe to do so.
    ///
    /// The fold bound is the minimum of
    /// * `now − lag` (entries and resolutions still in flight commit above
    ///   it, because commit timestamps exceed entry timestamps),
    /// * every *active* entry's timestamp (its action will commit above
    ///   its own entries),
    /// * every ineligible committed action's commit timestamp (no
    ///   manifest yet, or entries still missing locally).
    ///
    /// Only committed actions with complete local entry sets and commit
    /// timestamp strictly below the bound fold. That makes every fold a
    /// *prefix of the global commit order as known locally*, so any two
    /// repositories' checkpoints nest — the precondition for exact
    /// checkpoint adoption on merge.
    ///
    /// Static mode never folds: it serializes by Begin timestamps, so a
    /// late-beginning reader may still need to order itself *before*
    /// arbitrarily old committed entries (`TooLate` detection needs them).
    fn maybe_compact(&mut self, obj: ObjId, now: SimTime) {
        let Some(cc) = self.compaction else { return };
        if self.mode == Mode::StaticTs {
            return;
        }
        let Some(vlog) = self.logs.get(&obj) else {
            return;
        };
        let log = vlog.log();
        if log.len() < cc.min_entries {
            return;
        }

        let mut bound = Timestamp {
            counter: now.saturating_sub(cc.lag),
            node: 0,
        };
        let mut counts: BTreeMap<ActionId, u32> = BTreeMap::new();
        for e in log.entries() {
            match log.status(e.action) {
                ActionOutcome::Active => bound = bound.min(e.ts),
                ActionOutcome::Committed(_) => *counts.entry(e.action).or_default() += 1,
                ActionOutcome::Aborted => {}
            }
        }
        let mut candidates: Vec<(Timestamp, ActionId)> = Vec::new();
        for (a, n) in &counts {
            let ActionOutcome::Committed(cts) = log.status(*a) else {
                continue;
            };
            if log.checkpoint().is_some_and(|cp| cp.covers(*a).is_some()) {
                continue;
            }
            let complete = self
                .manifests
                .get(a)
                .map(|m| m.iter().find(|(o, _)| *o == obj).map_or(0, |(_, k)| *k))
                .is_some_and(|expect| expect == *n);
            if complete {
                candidates.push((cts, *a));
            } else {
                bound = bound.min(cts);
            }
        }
        candidates.retain(|(cts, _)| *cts < bound);
        if candidates.is_empty() {
            return;
        }
        candidates.sort();

        // Replay the folded entries — in (commit ts, entry ts) order, the
        // same order `Protocol::evaluate` would sort them — into one state
        // per op class, each restricted to that class's dependency
        // closure (evaluation replays closure-filtered sub-histories, so
        // the fold must too).
        let proto = Protocol::new(self.mode, self.rel.clone());
        let ops = S::op_classes();
        let mut states: BTreeMap<&'static str, S::State> = match log
            .checkpoint()
            .and_then(|cp| cp.state_as::<BTreeMap<&'static str, S::State>>())
        {
            Some(prev) => prev.clone(),
            None => ops.iter().map(|op| (*op, S::initial())).collect(),
        };
        let mut covered: BTreeMap<ActionId, Timestamp> = log
            .checkpoint()
            .map(|cp| cp.covered().clone())
            .unwrap_or_default();
        let mut folded = log.checkpoint().map_or(0, Checkpoint::folded);

        let fold_set: BTreeMap<ActionId, Timestamp> =
            candidates.iter().map(|(cts, a)| (*a, *cts)).collect();
        let mut replay: Vec<_> = log
            .entries()
            .filter_map(|e| fold_set.get(&e.action).map(|cts| (*cts, e.ts, e)))
            .collect();
        replay.sort_by_key(|(cts, ts, _)| (*cts, *ts));
        for op in &ops {
            let closure = proto.closure_classes(op);
            let state = states.get_mut(op).expect("state per op class");
            for (_, _, e) in &replay {
                if closure.contains(&S::event_class(&e.event.inv, &e.event.res)) {
                    let (_res, next) = S::apply(state, &e.event.inv);
                    *state = next;
                }
            }
        }
        folded += replay.len() as u64;
        covered.extend(fold_set.iter().map(|(a, cts)| (*a, *cts)));

        let cp = Checkpoint::new(states, covered, folded);
        if self.wal_active() {
            // Checkpoints subsume acked entries, so they must be at least
            // as durable as what they fold.
            self.wal
                .entry(obj)
                .or_default()
                .install_checkpoint(cp.clone());
        }
        self.vlog(obj).install_checkpoint(cp);

        // Drop manifests that every listed object has now folded.
        let fully_folded: Vec<ActionId> = fold_set
            .keys()
            .filter(|a| {
                self.manifests.get(a).is_some_and(|m| {
                    m.iter().all(|(o, _)| {
                        self.logs.get(o).is_some_and(|v| {
                            v.log()
                                .checkpoint()
                                .is_some_and(|cp| cp.covers(**a).is_some())
                        })
                    })
                })
            })
            .copied()
            .collect();
        for a in fully_folded {
            self.manifests.remove(&a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{entry_of, ActionOutcome};
    use quorumcc_core::minimal_static_relation;
    use quorumcc_model::spec::ExploreBounds;
    use quorumcc_model::testtypes::{QInv, QRes, TestQueue};
    use quorumcc_sim::{Ctx, FaultPlan, NetworkConfig, Process, Sim};

    fn ts(c: u64, n: u32) -> Timestamp {
        Timestamp {
            counter: c,
            node: n,
        }
    }

    fn queue_rel() -> DependencyRelation {
        minimal_static_relation::<TestQueue>(ExploreBounds {
            depth: 4,
            ..ExploreBounds::default()
        })
        .relation
    }

    /// A probe process that fires a script at repository 0 and records the
    /// replies (exercises Repository through the real engine).
    struct Probe {
        script: Vec<Msg<QInv, QRes>>,
        replies: Vec<Msg<QInv, QRes>>,
    }

    enum Node {
        Repo(Box<Repository<TestQueue>>),
        Probe(Probe),
    }

    impl Process<Msg<QInv, QRes>> for Node {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg<QInv, QRes>>) {
            if let Node::Probe(p) = self {
                for m in p.script.drain(..) {
                    ctx.send(0, m);
                }
            }
        }
        fn on_message(
            &mut self,
            ctx: &mut Ctx<'_, Msg<QInv, QRes>>,
            from: ProcId,
            msg: Msg<QInv, QRes>,
        ) {
            match self {
                Node::Repo(r) => r.handle(ctx, from, msg),
                Node::Probe(p) => p.replies.push(msg),
            }
        }
    }

    fn run_probe(script: Vec<Msg<QInv, QRes>>) -> Vec<Msg<QInv, QRes>> {
        run_probe_on(Repository::new(Mode::Hybrid, queue_rel()), script)
    }

    fn run_probe_on(
        repo: Repository<TestQueue>,
        script: Vec<Msg<QInv, QRes>>,
    ) -> Vec<Msg<QInv, QRes>> {
        let probe = Probe {
            script,
            replies: Vec::new(),
        };
        let mut sim = Sim::new(
            vec![Node::Repo(Box::new(repo)), Node::Probe(probe)],
            NetworkConfig {
                min_delay: 1,
                max_delay: 1,
                ..NetworkConfig::default()
            },
            FaultPlan::none(),
            1,
        );
        sim.run(1000);
        let Node::Probe(p) = sim.process(1) else {
            panic!("probe expected")
        };
        p.replies.clone()
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut view = ObjectLog::new();
        view.insert(entry_of::<TestQueue>(
            ts(1, 1),
            ActionId(0),
            ts(1, 1),
            QInv::Enq(1),
            QRes::Ok,
        ));
        let replies = run_probe(vec![
            Msg::WriteLog {
                obj: ObjId(0),
                req: 1,
                log: view,
                entry: None,
                cfg: 0,
            },
            Msg::ReadLog {
                obj: ObjId(0),
                req: 2,
                action: ActionId(9),
                begin_ts: ts(5, 1),
                op: "Deq",
                cfg: 0,
                since: 0,
                durable: 0,
            },
        ]);
        assert_eq!(replies.len(), 2);
        assert!(replies
            .iter()
            .any(|m| matches!(m, Msg::LogReply { delta, .. } if delta.entries.len() == 1)));
    }

    #[test]
    fn reservation_blocks_dependent_writer() {
        // Action 9 reserves a Deq; action 0 then writes an Enq entry:
        // Deq ≥ Enq/Ok → conflict reported.
        let entry =
            entry_of::<TestQueue>(ts(10, 2), ActionId(0), ts(10, 2), QInv::Enq(1), QRes::Ok);
        let replies = run_probe(vec![
            Msg::ReadLog {
                obj: ObjId(0),
                req: 1,
                action: ActionId(9),
                begin_ts: ts(5, 1),
                op: "Deq",
                cfg: 0,
                since: 0,
                durable: 0,
            },
            Msg::WriteLog {
                obj: ObjId(0),
                req: 2,
                log: ObjectLog::new(),
                entry: Some(entry),
                cfg: 0,
            },
        ]);
        assert!(
            replies.iter().any(|m| matches!(
                m,
                Msg::WriteAck {
                    conflict: Some(a), ..
                } if *a == ActionId(9)
            )),
            "{replies:?}"
        );
    }

    #[test]
    fn unrelated_writer_passes_reservations() {
        // An Enq reservation does not block another Enq (no Enq ≥ Enq pair
        // in ≥S).
        let entry =
            entry_of::<TestQueue>(ts(10, 2), ActionId(0), ts(10, 2), QInv::Enq(1), QRes::Ok);
        let replies = run_probe(vec![
            Msg::ReadLog {
                obj: ObjId(0),
                req: 1,
                action: ActionId(9),
                begin_ts: ts(5, 1),
                op: "Enq",
                cfg: 0,
                since: 0,
                durable: 0,
            },
            Msg::WriteLog {
                obj: ObjId(0),
                req: 2,
                log: ObjectLog::new(),
                entry: Some(entry),
                cfg: 0,
            },
        ]);
        assert!(replies
            .iter()
            .any(|m| matches!(m, Msg::WriteAck { conflict: None, .. })));
    }

    #[test]
    fn resolve_clears_reservations_and_marks_status() {
        let entry =
            entry_of::<TestQueue>(ts(10, 2), ActionId(0), ts(10, 2), QInv::Enq(1), QRes::Ok);
        let replies = run_probe(vec![
            Msg::ReadLog {
                obj: ObjId(0),
                req: 1,
                action: ActionId(9),
                begin_ts: ts(5, 1),
                op: "Deq",
                cfg: 0,
                since: 0,
                durable: 0,
            },
            Msg::Resolve {
                action: ActionId(9),
                outcome: ActionOutcome::Aborted,
                entries: Vec::new(),
            },
            Msg::WriteLog {
                obj: ObjId(0),
                req: 2,
                log: ObjectLog::new(),
                entry: Some(entry),
                cfg: 0,
            },
        ]);
        assert!(
            replies
                .iter()
                .any(|m| matches!(m, Msg::WriteAck { conflict: None, .. })),
            "{replies:?}"
        );
    }

    #[test]
    fn own_reservation_never_conflicts() {
        let entry = entry_of::<TestQueue>(ts(10, 2), ActionId(9), ts(5, 1), QInv::Enq(1), QRes::Ok);
        let replies = run_probe(vec![
            Msg::ReadLog {
                obj: ObjId(0),
                req: 1,
                action: ActionId(9),
                begin_ts: ts(5, 1),
                op: "Deq",
                cfg: 0,
                since: 0,
                durable: 0,
            },
            Msg::WriteLog {
                obj: ObjId(0),
                req: 2,
                log: ObjectLog::new(),
                entry: Some(entry),
                cfg: 0,
            },
        ]);
        assert!(replies
            .iter()
            .any(|m| matches!(m, Msg::WriteAck { conflict: None, .. })));
    }

    fn epoch_state(epoch: u64) -> ConfigState {
        ConfigState::Stable(crate::reconfig::Config::new(
            epoch,
            [0],
            quorumcc_quorum::ThresholdAssignment::new(1),
        ))
    }

    #[test]
    fn stale_request_is_refused_with_the_current_state() {
        let repo = Repository::new(Mode::Hybrid, queue_rel()).with_config(epoch_state(1));
        // version = 3; a cfg=0 read must bounce, and no reservation or
        // reply should be produced.
        let replies = run_probe_on(
            repo,
            vec![Msg::ReadLog {
                obj: ObjId(0),
                req: 7,
                action: ActionId(9),
                begin_ts: ts(5, 1),
                op: "Deq",
                cfg: 0,
                since: 0,
                durable: 0,
            }],
        );
        assert_eq!(replies.len(), 1, "{replies:?}");
        assert!(matches!(
            &replies[0],
            Msg::StaleConfig { req: 7, state } if state.version() == 3
        ));
    }

    #[test]
    fn current_request_is_served_and_propagation_crosses_epochs() {
        let repo = Repository::new(Mode::Hybrid, queue_rel()).with_config(epoch_state(1));
        let mut view = ObjectLog::new();
        view.insert(entry_of::<TestQueue>(
            ts(1, 1),
            ActionId(0),
            ts(1, 1),
            QInv::Enq(1),
            QRes::Ok,
        ));
        let replies = run_probe_on(
            repo,
            vec![
                // Entry-less propagation with a stale cfg still merges.
                Msg::WriteLog {
                    obj: ObjId(0),
                    req: 1,
                    log: view,
                    entry: None,
                    cfg: 0,
                },
                Msg::ReadLog {
                    obj: ObjId(0),
                    req: 2,
                    action: ActionId(9),
                    begin_ts: ts(5, 1),
                    op: "Deq",
                    cfg: 3,
                    since: 0,
                    durable: 0,
                },
            ],
        );
        assert!(replies
            .iter()
            .any(|m| matches!(m, Msg::LogReply { delta, .. } if delta.entries.len() == 1)));
    }

    #[test]
    fn install_adopts_newer_configurations_only() {
        let repo = Repository::new(Mode::Hybrid, queue_rel()).with_config(epoch_state(1));
        let replies = run_probe_on(
            repo,
            vec![
                Msg::Install {
                    req: 1,
                    state: epoch_state(2), // version 5: adopt
                },
                Msg::Install {
                    req: 2,
                    state: epoch_state(0), // version 1: refuse, re-ack current
                },
            ],
        );
        let versions: Vec<u64> = replies
            .iter()
            .filter_map(|m| match m {
                Msg::InstallAck { version, .. } => Some(*version),
                _ => None,
            })
            .collect();
        assert_eq!(versions, vec![5, 5], "{replies:?}");
    }

    #[test]
    fn static_mode_exempts_earlier_readers() {
        let mut repo: Repository<TestQueue> = Repository::new(Mode::StaticTs, queue_rel());
        // Reader began at 5; writer began at 10 → reader serializes first,
        // no conflict.
        repo.reservations.entry(ObjId(0)).or_default().insert(
            ActionId(9),
            Reservation {
                begin_ts: ts(5, 1),
                ops: vec!["Deq"],
            },
        );
        let e_late =
            entry_of::<TestQueue>(ts(12, 2), ActionId(0), ts(10, 2), QInv::Enq(1), QRes::Ok);
        assert_eq!(repo.conflicting_reader(ObjId(0), &e_late), None);
        // Writer began at 2 < 5 → the reader should have seen it: conflict.
        let e_early =
            entry_of::<TestQueue>(ts(12, 2), ActionId(0), ts(2, 2), QInv::Enq(1), QRes::Ok);
        assert_eq!(
            repo.conflicting_reader(ObjId(0), &e_early),
            Some(ActionId(9))
        );
    }
}
