//! Repositories: the long-term storage modules (§3.2). They merge, serve
//! and resolve logs, and hold the **read reservations** that close the
//! concurrent read/write race.
//!
//! Serving a read records a reservation for the reading action's
//! operation class, held until the action resolves. A later `WriteLog`
//! whose fresh entry belongs to a class some *other* reserved invocation
//! depends on is acknowledged with a conflict, and the writing action
//! aborts. Soundness rests on the quorum arithmetic: `ti + tf > n` makes
//! the writer's counted ack set intersect every reader's counted reply
//! set, so one repository always witnesses the pair in some order — either
//! the reader saw the entry, or the writer hears about the reservation.

use crate::messages::Msg;
use crate::protocol::Mode;
use crate::reconfig::ConfigState;
use crate::types::{ObjId, ObjectLog};
use quorumcc_core::DependencyRelation;
use quorumcc_model::{ActionId, Classified};
use quorumcc_sim::trace::{ConflictKind, TraceAction};
use quorumcc_sim::{Ctx, ProcId, SimTime, Timestamp};
use rand::Rng as _;
use std::collections::BTreeMap;

/// Timer token repositories use for anti-entropy rounds.
const TOKEN_ANTI_ENTROPY: u64 = u64::MAX - 1;

/// One read reservation.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Reservation {
    begin_ts: Timestamp,
    ops: Vec<&'static str>,
}

/// A repository holding per-object logs and reservations.
///
/// Crash behaviour: the simulator drops messages to crashed sites; logs
/// and reservations model stable storage, so a recovered repository serves
/// its pre-crash state (plus whatever merges reach it afterwards).
#[derive(Debug, Clone)]
pub struct Repository<S: Classified> {
    mode: Mode,
    rel: DependencyRelation,
    logs: BTreeMap<ObjId, ObjectLog<S::Inv, S::Res>>,
    reservations: BTreeMap<ObjId, BTreeMap<ActionId, Reservation>>,
    peers: Vec<ProcId>,
    anti_entropy: Option<SimTime>,
    /// The configuration state this repository enforces; `None` (the
    /// standalone default) admits every version — reconfiguration-aware
    /// clusters always install one.
    state: Option<ConfigState>,
}

impl<S: Classified> Repository<S> {
    /// An empty repository enforcing `rel` under `mode`.
    pub fn new(mode: Mode, rel: DependencyRelation) -> Self {
        Repository {
            mode,
            rel,
            logs: BTreeMap::new(),
            reservations: BTreeMap::new(),
            peers: Vec::new(),
            anti_entropy: None,
            state: None,
        }
    }

    /// Sets the bootstrap configuration state; quorum-bearing messages
    /// carrying an older version are refused with [`Msg::StaleConfig`].
    pub fn with_config(mut self, state: ConfigState) -> Self {
        self.state = Some(state);
        self
    }

    /// The current configuration version (0 when configuration-unaware).
    fn version(&self) -> u64 {
        self.state.as_ref().map_or(0, ConfigState::version)
    }

    /// Admits or refuses a quorum-bearing request: on a stale version,
    /// traces the refusal and pushes the current state back to the sender.
    fn admit(
        &self,
        ctx: &mut Ctx<'_, Msg<S::Inv, S::Res>>,
        from: ProcId,
        req: u64,
        cfg: u64,
    ) -> bool {
        let Some(state) = &self.state else {
            return true;
        };
        if state.admit(cfg).is_ok() {
            return true;
        }
        ctx.trace(TraceAction::StaleEpoch {
            seen: cfg,
            current: state.version(),
        });
        ctx.send(
            from,
            Msg::StaleConfig {
                req,
                state: state.clone(),
            },
        );
        false
    }

    /// Enables periodic anti-entropy: every `interval` ticks the
    /// repository pushes its logs to one random peer. Heals divergence
    /// left by narrow quorums, partitions, and lost messages.
    pub fn with_anti_entropy(mut self, peers: Vec<ProcId>, interval: SimTime) -> Self {
        self.peers = peers;
        self.anti_entropy = Some(interval.max(1));
        self
    }

    /// Arms the first anti-entropy timer (call from `on_start`).
    pub fn start(&mut self, ctx: &mut Ctx<'_, Msg<S::Inv, S::Res>>) {
        if let Some(iv) = self.anti_entropy {
            // Desynchronize rounds across repositories.
            ctx.set_timer(iv + u64::from(ctx.me() % 5), TOKEN_ANTI_ENTROPY);
        }
    }

    /// Handles a timer (anti-entropy rounds).
    pub fn tick(&mut self, ctx: &mut Ctx<'_, Msg<S::Inv, S::Res>>, token: u64) {
        if token != TOKEN_ANTI_ENTROPY {
            return;
        }
        let Some(iv) = self.anti_entropy else { return };
        let peers: Vec<ProcId> = self
            .peers
            .iter()
            .copied()
            .filter(|p| *p != ctx.me())
            .collect();
        if !peers.is_empty() {
            let peer = peers[ctx.rng().gen_range(0..peers.len())];
            ctx.trace(TraceAction::AntiEntropy { peer });
            for (obj, log) in &self.logs {
                ctx.send(
                    peer,
                    Msg::WriteLog {
                        obj: *obj,
                        req: 0, // repositories ignore the ack they trigger
                        log: log.clone(),
                        entry: None,
                        cfg: self.version(),
                    },
                );
            }
        }
        ctx.set_timer(iv, TOKEN_ANTI_ENTROPY);
    }

    /// The log stored for `obj` (empty default).
    pub fn log(&self, obj: ObjId) -> ObjectLog<S::Inv, S::Res> {
        self.logs.get(&obj).cloned().unwrap_or_default()
    }

    /// Handles one message, replying through `ctx`.
    pub fn handle(
        &mut self,
        ctx: &mut Ctx<'_, Msg<S::Inv, S::Res>>,
        from: ProcId,
        msg: Msg<S::Inv, S::Res>,
    ) {
        match msg {
            Msg::ReadLog {
                obj,
                req,
                action,
                begin_ts,
                op,
                cfg,
            } => {
                if !self.admit(ctx, from, req, cfg) {
                    return;
                }
                let slot = self
                    .reservations
                    .entry(obj)
                    .or_default()
                    .entry(action)
                    .or_insert(Reservation {
                        begin_ts,
                        ops: Vec::new(),
                    });
                if !slot.ops.contains(&op) {
                    slot.ops.push(op);
                }
                ctx.trace(TraceAction::Reserve {
                    obj: u64::from(obj.0),
                    action: u64::from(action.0),
                });
                let log = self.logs.entry(obj).or_default().clone();
                ctx.send(from, Msg::LogReply { obj, req, log });
            }
            Msg::WriteLog {
                obj,
                req,
                log,
                entry,
                cfg,
            } => {
                // Entry-carrying writes are quorum-counted and must be
                // current; entry-less propagation is a CRDT-safe merge and
                // is always welcome (anti-entropy heals across epochs).
                if entry.is_some() && !self.admit(ctx, from, req, cfg) {
                    return;
                }
                let conflict = entry.as_ref().and_then(|e| self.conflicting_reader(obj, e));
                if let (Some(with), Some(e)) = (conflict, entry.as_ref()) {
                    ctx.trace(TraceAction::Conflict {
                        obj: u64::from(obj.0),
                        action: u64::from(e.action.0),
                        with: u64::from(with.0),
                        kind: ConflictKind::Reservation,
                    });
                }
                self.logs.entry(obj).or_default().merge(&log);
                if let Some(e) = entry {
                    self.logs.entry(obj).or_default().insert(e);
                }
                // Resolutions gossip through merged views; a lost Resolve
                // broadcast must not leave reservations stuck forever.
                let resolved: Vec<ActionId> = log
                    .statuses()
                    .filter(|(_, o)| o.is_resolved())
                    .map(|(a, _)| a)
                    .collect();
                for a in resolved {
                    for res in self.reservations.values_mut() {
                        res.remove(&a);
                    }
                }
                ctx.send(from, Msg::WriteAck { obj, req, conflict });
            }
            Msg::Resolve { action, outcome } => {
                for log in self.logs.values_mut() {
                    log.resolve(action, outcome);
                }
                if outcome.is_resolved() {
                    for res in self.reservations.values_mut() {
                        res.remove(&action);
                    }
                }
            }
            Msg::Install { req, state } => {
                let newer = state.version() > self.version();
                if newer {
                    ctx.trace(TraceAction::ConfigAdopt {
                        epoch: state.epoch(),
                        version: state.version(),
                    });
                    let stable_members = match &state {
                        ConfigState::Stable(c) => Some(c.members.clone()),
                        ConfigState::Joint { .. } => None,
                    };
                    self.state = Some(state);
                    // Committing a stable config triggers state transfer:
                    // push logs to the new membership so freshly added
                    // members catch up without waiting for anti-entropy.
                    if let Some(members) = stable_members {
                        if !self.logs.is_empty() {
                            let cfg = self.version();
                            let me = ctx.me();
                            for peer in members.into_iter().filter(|p| *p != me) {
                                for (obj, log) in &self.logs {
                                    ctx.send(
                                        peer,
                                        Msg::WriteLog {
                                            obj: *obj,
                                            req: 0,
                                            log: log.clone(),
                                            entry: None,
                                            cfg,
                                        },
                                    );
                                }
                            }
                        }
                    }
                }
                ctx.send(
                    from,
                    Msg::InstallAck {
                        req,
                        version: self.version(),
                    },
                );
            }
            // Repositories ignore front-end-bound messages.
            Msg::LogReply { .. }
            | Msg::WriteAck { .. }
            | Msg::InstallAck { .. }
            | Msg::StaleConfig { .. } => {}
        }
    }

    /// Whether another action holds a reservation whose invocation depends
    /// on the class of the fresh entry `e`.
    ///
    /// Static mode exempts readers that began *before* the writer: they
    /// serialize before it and never needed to see it. Hybrid and dynamic
    /// readers commit after the writer, so every related reservation
    /// conflicts.
    fn conflicting_reader(
        &self,
        obj: ObjId,
        e: &crate::types::LogEntry<S::Inv, S::Res>,
    ) -> Option<ActionId> {
        let class = S::event_class(&e.event.inv, &e.event.res);
        let reservations = self.reservations.get(&obj)?;
        for (action, r) in reservations {
            if *action == e.action {
                continue;
            }
            if self.mode == Mode::StaticTs && r.begin_ts < e.begin_ts {
                continue;
            }
            if r.ops.iter().any(|op| self.rel.contains(op, class)) {
                return Some(*action);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{entry_of, ActionOutcome};
    use quorumcc_core::minimal_static_relation;
    use quorumcc_model::spec::ExploreBounds;
    use quorumcc_model::testtypes::{QInv, QRes, TestQueue};
    use quorumcc_sim::{FaultPlan, NetworkConfig, Process, Sim};

    fn ts(c: u64, n: u32) -> Timestamp {
        Timestamp {
            counter: c,
            node: n,
        }
    }

    fn queue_rel() -> DependencyRelation {
        minimal_static_relation::<TestQueue>(ExploreBounds {
            depth: 4,
            ..ExploreBounds::default()
        })
        .relation
    }

    /// A probe process that fires a script at repository 0 and records the
    /// replies (exercises Repository through the real engine).
    struct Probe {
        script: Vec<Msg<QInv, QRes>>,
        replies: Vec<Msg<QInv, QRes>>,
    }

    enum Node {
        Repo(Box<Repository<TestQueue>>),
        Probe(Probe),
    }

    impl Process<Msg<QInv, QRes>> for Node {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg<QInv, QRes>>) {
            if let Node::Probe(p) = self {
                for m in p.script.drain(..) {
                    ctx.send(0, m);
                }
            }
        }
        fn on_message(
            &mut self,
            ctx: &mut Ctx<'_, Msg<QInv, QRes>>,
            from: ProcId,
            msg: Msg<QInv, QRes>,
        ) {
            match self {
                Node::Repo(r) => r.handle(ctx, from, msg),
                Node::Probe(p) => p.replies.push(msg),
            }
        }
    }

    fn run_probe(script: Vec<Msg<QInv, QRes>>) -> Vec<Msg<QInv, QRes>> {
        run_probe_on(Repository::new(Mode::Hybrid, queue_rel()), script)
    }

    fn run_probe_on(
        repo: Repository<TestQueue>,
        script: Vec<Msg<QInv, QRes>>,
    ) -> Vec<Msg<QInv, QRes>> {
        let probe = Probe {
            script,
            replies: Vec::new(),
        };
        let mut sim = Sim::new(
            vec![Node::Repo(Box::new(repo)), Node::Probe(probe)],
            NetworkConfig {
                min_delay: 1,
                max_delay: 1,
                drop_prob: 0.0,
            },
            FaultPlan::none(),
            1,
        );
        sim.run(1000);
        let Node::Probe(p) = sim.process(1) else {
            panic!("probe expected")
        };
        p.replies.clone()
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut view = ObjectLog::new();
        view.insert(entry_of::<TestQueue>(
            ts(1, 1),
            ActionId(0),
            ts(1, 1),
            QInv::Enq(1),
            QRes::Ok,
        ));
        let replies = run_probe(vec![
            Msg::WriteLog {
                obj: ObjId(0),
                req: 1,
                log: view,
                entry: None,
                cfg: 0,
            },
            Msg::ReadLog {
                obj: ObjId(0),
                req: 2,
                action: ActionId(9),
                begin_ts: ts(5, 1),
                op: "Deq",
                cfg: 0,
            },
        ]);
        assert_eq!(replies.len(), 2);
        assert!(replies
            .iter()
            .any(|m| matches!(m, Msg::LogReply { log, .. } if log.len() == 1)));
    }

    #[test]
    fn reservation_blocks_dependent_writer() {
        // Action 9 reserves a Deq; action 0 then writes an Enq entry:
        // Deq ≥ Enq/Ok → conflict reported.
        let entry =
            entry_of::<TestQueue>(ts(10, 2), ActionId(0), ts(10, 2), QInv::Enq(1), QRes::Ok);
        let replies = run_probe(vec![
            Msg::ReadLog {
                obj: ObjId(0),
                req: 1,
                action: ActionId(9),
                begin_ts: ts(5, 1),
                op: "Deq",
                cfg: 0,
            },
            Msg::WriteLog {
                obj: ObjId(0),
                req: 2,
                log: ObjectLog::new(),
                entry: Some(entry),
                cfg: 0,
            },
        ]);
        assert!(
            replies.iter().any(|m| matches!(
                m,
                Msg::WriteAck {
                    conflict: Some(a), ..
                } if *a == ActionId(9)
            )),
            "{replies:?}"
        );
    }

    #[test]
    fn unrelated_writer_passes_reservations() {
        // An Enq reservation does not block another Enq (no Enq ≥ Enq pair
        // in ≥S).
        let entry =
            entry_of::<TestQueue>(ts(10, 2), ActionId(0), ts(10, 2), QInv::Enq(1), QRes::Ok);
        let replies = run_probe(vec![
            Msg::ReadLog {
                obj: ObjId(0),
                req: 1,
                action: ActionId(9),
                begin_ts: ts(5, 1),
                op: "Enq",
                cfg: 0,
            },
            Msg::WriteLog {
                obj: ObjId(0),
                req: 2,
                log: ObjectLog::new(),
                entry: Some(entry),
                cfg: 0,
            },
        ]);
        assert!(replies
            .iter()
            .any(|m| matches!(m, Msg::WriteAck { conflict: None, .. })));
    }

    #[test]
    fn resolve_clears_reservations_and_marks_status() {
        let entry =
            entry_of::<TestQueue>(ts(10, 2), ActionId(0), ts(10, 2), QInv::Enq(1), QRes::Ok);
        let replies = run_probe(vec![
            Msg::ReadLog {
                obj: ObjId(0),
                req: 1,
                action: ActionId(9),
                begin_ts: ts(5, 1),
                op: "Deq",
                cfg: 0,
            },
            Msg::Resolve {
                action: ActionId(9),
                outcome: ActionOutcome::Aborted,
            },
            Msg::WriteLog {
                obj: ObjId(0),
                req: 2,
                log: ObjectLog::new(),
                entry: Some(entry),
                cfg: 0,
            },
        ]);
        assert!(
            replies
                .iter()
                .any(|m| matches!(m, Msg::WriteAck { conflict: None, .. })),
            "{replies:?}"
        );
    }

    #[test]
    fn own_reservation_never_conflicts() {
        let entry = entry_of::<TestQueue>(ts(10, 2), ActionId(9), ts(5, 1), QInv::Enq(1), QRes::Ok);
        let replies = run_probe(vec![
            Msg::ReadLog {
                obj: ObjId(0),
                req: 1,
                action: ActionId(9),
                begin_ts: ts(5, 1),
                op: "Deq",
                cfg: 0,
            },
            Msg::WriteLog {
                obj: ObjId(0),
                req: 2,
                log: ObjectLog::new(),
                entry: Some(entry),
                cfg: 0,
            },
        ]);
        assert!(replies
            .iter()
            .any(|m| matches!(m, Msg::WriteAck { conflict: None, .. })));
    }

    fn epoch_state(epoch: u64) -> ConfigState {
        ConfigState::Stable(crate::reconfig::Config::new(
            epoch,
            [0],
            quorumcc_quorum::ThresholdAssignment::new(1),
        ))
    }

    #[test]
    fn stale_request_is_refused_with_the_current_state() {
        let repo = Repository::new(Mode::Hybrid, queue_rel()).with_config(epoch_state(1));
        // version = 3; a cfg=0 read must bounce, and no reservation or
        // reply should be produced.
        let replies = run_probe_on(
            repo,
            vec![Msg::ReadLog {
                obj: ObjId(0),
                req: 7,
                action: ActionId(9),
                begin_ts: ts(5, 1),
                op: "Deq",
                cfg: 0,
            }],
        );
        assert_eq!(replies.len(), 1, "{replies:?}");
        assert!(matches!(
            &replies[0],
            Msg::StaleConfig { req: 7, state } if state.version() == 3
        ));
    }

    #[test]
    fn current_request_is_served_and_propagation_crosses_epochs() {
        let repo = Repository::new(Mode::Hybrid, queue_rel()).with_config(epoch_state(1));
        let mut view = ObjectLog::new();
        view.insert(entry_of::<TestQueue>(
            ts(1, 1),
            ActionId(0),
            ts(1, 1),
            QInv::Enq(1),
            QRes::Ok,
        ));
        let replies = run_probe_on(
            repo,
            vec![
                // Entry-less propagation with a stale cfg still merges.
                Msg::WriteLog {
                    obj: ObjId(0),
                    req: 1,
                    log: view,
                    entry: None,
                    cfg: 0,
                },
                Msg::ReadLog {
                    obj: ObjId(0),
                    req: 2,
                    action: ActionId(9),
                    begin_ts: ts(5, 1),
                    op: "Deq",
                    cfg: 3,
                },
            ],
        );
        assert!(replies
            .iter()
            .any(|m| matches!(m, Msg::LogReply { log, .. } if log.len() == 1)));
    }

    #[test]
    fn install_adopts_newer_configurations_only() {
        let repo = Repository::new(Mode::Hybrid, queue_rel()).with_config(epoch_state(1));
        let replies = run_probe_on(
            repo,
            vec![
                Msg::Install {
                    req: 1,
                    state: epoch_state(2), // version 5: adopt
                },
                Msg::Install {
                    req: 2,
                    state: epoch_state(0), // version 1: refuse, re-ack current
                },
            ],
        );
        let versions: Vec<u64> = replies
            .iter()
            .filter_map(|m| match m {
                Msg::InstallAck { version, .. } => Some(*version),
                _ => None,
            })
            .collect();
        assert_eq!(versions, vec![5, 5], "{replies:?}");
    }

    #[test]
    fn static_mode_exempts_earlier_readers() {
        let mut repo: Repository<TestQueue> = Repository::new(Mode::StaticTs, queue_rel());
        // Reader began at 5; writer began at 10 → reader serializes first,
        // no conflict.
        repo.reservations.entry(ObjId(0)).or_default().insert(
            ActionId(9),
            Reservation {
                begin_ts: ts(5, 1),
                ops: vec!["Deq"],
            },
        );
        let e_late =
            entry_of::<TestQueue>(ts(12, 2), ActionId(0), ts(10, 2), QInv::Enq(1), QRes::Ok);
        assert_eq!(repo.conflicting_reader(ObjId(0), &e_late), None);
        // Writer began at 2 < 5 → the reader should have seen it: conflict.
        let e_early =
            entry_of::<TestQueue>(ts(12, 2), ActionId(0), ts(2, 2), QInv::Enq(1), QRes::Ok);
        assert_eq!(
            repo.conflicting_reader(ObjId(0), &e_early),
            Some(ActionId(9))
        );
    }
}
