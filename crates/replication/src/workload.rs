//! Deterministic workload generation for the experiments.

use crate::client::Transaction;
use crate::types::ObjId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Workload shape parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Number of clients.
    pub clients: usize,
    /// Transactions per client.
    pub txns_per_client: usize,
    /// Operations per transaction.
    pub ops_per_txn: usize,
    /// Number of replicated objects (operations pick one uniformly).
    pub objects: u16,
    /// Generation seed.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            clients: 3,
            txns_per_client: 5,
            ops_per_txn: 2,
            objects: 1,
            seed: 0xFEED,
        }
    }
}

/// Generates per-client transaction lists, drawing invocations from
/// `sampler` (a function from the RNG to an invocation).
///
/// # Example
///
/// ```
/// use quorumcc_replication::workload::{generate, WorkloadSpec};
/// use quorumcc_model::testtypes::QInv;
/// use rand::Rng;
///
/// let spec = WorkloadSpec { clients: 2, ..WorkloadSpec::default() };
/// let w = generate(spec, |rng| {
///     if rng.gen_bool(0.6) {
///         QInv::Enq(rng.gen_range(1..=2))
///     } else {
///         QInv::Deq
///     }
/// });
/// assert_eq!(w.len(), 2);
/// assert_eq!(w[0].len(), spec.txns_per_client);
/// ```
pub fn generate<I>(
    spec: WorkloadSpec,
    mut sampler: impl FnMut(&mut StdRng) -> I,
) -> Vec<Vec<Transaction<I>>> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    (0..spec.clients)
        .map(|_| {
            (0..spec.txns_per_client)
                .map(|_| Transaction {
                    ops: (0..spec.ops_per_txn)
                        .map(|_| {
                            let obj = ObjId(rng.gen_range(0..spec.objects.max(1)));
                            (obj, sampler(&mut rng))
                        })
                        .collect(),
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_spec() {
        let spec = WorkloadSpec {
            clients: 4,
            txns_per_client: 3,
            ops_per_txn: 5,
            objects: 2,
            seed: 1,
        };
        let w = generate(spec, |rng| rng.gen_range(0..10u32));
        assert_eq!(w.len(), 4);
        assert!(w.iter().all(|c| c.len() == 3));
        assert!(w
            .iter()
            .flatten()
            .all(|t| t.ops.len() == 5 && t.ops.iter().all(|(o, _)| o.0 < 2)));
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::default();
        let a = generate(spec, |rng| rng.gen_range(0..10u32));
        let b = generate(spec, |rng| rng.gen_range(0..10u32));
        let flat = |w: &Vec<Vec<Transaction<u32>>>| {
            w.iter()
                .flatten()
                .flat_map(|t| t.ops.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(flat(&a), flat(&b));
    }
}
