//! Deterministic chaos fuzzing: sampled fault plans × network fault
//! profiles, every run audited by the safety oracle, failures greedily
//! shrunk to a minimal reproducing plan.
//!
//! A [`ChaosPlan`] is a pure function of `(base_seed, index)` — the same
//! SplitMix64 seed derivation the parallel verification pipeline uses —
//! so a sweep partitions perfectly across threads and any failing plan
//! can be re-created from its printed spec alone ([`ChaosPlan::encode`] /
//! [`ChaosPlan::parse`]). Durability is sampled from the *sound* classes
//! only ([`Durability::Stable`] and a write-ahead-logging volatile site);
//! the deliberately unsafe amnesiac class and the weakened-quorum client
//! are reachable only through explicit knobs, because the sweep's
//! contract is zero violations on a correct tree.

use crate::client::Fanout;
use crate::cluster::{ProtocolConfig, RunBuilder, RunReport, TuningConfig};
use crate::error::ReplicationError;
use crate::oracle::SafetyReport;
use crate::protocol::Protocol;
use crate::repository::Durability;
use crate::workload::{generate, WorkloadSpec};
use quorumcc_core::parallel::{derive_seed, map_indexed};
use quorumcc_model::spec::ExploreBounds;
use quorumcc_model::{Classified, Enumerable};
use quorumcc_sim::{FaultPlan, NetworkConfig, SimTime};
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

/// A named network fault profile.
#[derive(Debug, Clone, Copy)]
pub struct ChaosProfile {
    /// Profile name (aggregation key in sweeps and benches).
    pub name: &'static str,
    /// Per-message drop probability.
    pub drop_prob: f64,
    /// Per-message duplication probability.
    pub dup_prob: f64,
    /// Extra uniform delay window for reordering.
    pub reorder_window: SimTime,
}

/// The fault profiles a sweep samples from.
pub const PROFILES: [ChaosProfile; 5] = [
    ChaosProfile {
        name: "clean",
        drop_prob: 0.0,
        dup_prob: 0.0,
        reorder_window: 0,
    },
    ChaosProfile {
        name: "lossy",
        drop_prob: 0.05,
        dup_prob: 0.0,
        reorder_window: 0,
    },
    ChaosProfile {
        name: "dup",
        drop_prob: 0.0,
        dup_prob: 0.08,
        reorder_window: 0,
    },
    ChaosProfile {
        name: "reorder",
        drop_prob: 0.0,
        dup_prob: 0.0,
        reorder_window: 12,
    },
    ChaosProfile {
        name: "stormy",
        drop_prob: 0.05,
        dup_prob: 0.05,
        reorder_window: 8,
    },
];

/// Workload shape and audit bounds shared by every run of a sweep.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Repositories in the cluster.
    pub n_sites: u32,
    /// Concurrent clients.
    pub clients: usize,
    /// Transactions per client.
    pub txns_per_client: usize,
    /// Operations per transaction.
    pub ops_per_txn: usize,
    /// Objects the workload spreads over.
    pub objects: u16,
    /// Simulation horizon per run.
    pub max_time: SimTime,
    /// Serializability-search bounds for the oracle.
    pub bounds: ExploreBounds,
    /// Test-only: run the sweep with the weakened-quorum client, so the
    /// oracle's self-test can confirm it catches the seeded bug.
    pub weaken_read_quorum: bool,
    /// Test-only: run the sweep with the second planted bug — clients
    /// commit final-quorum writes at send time, before any ack.
    pub skip_final_ack: bool,
    /// Object-space shards every run uses (1 = unsharded). Sweep-level
    /// like the workload shape: plan sampling and replay specs are
    /// unaffected, so golden plans replay identically.
    pub shards: u16,
    /// Op batching / pipelining degree every run uses (1 = off).
    pub batch: u32,
    /// Status-GC batch every run uses (0 = full status shipping, no GC;
    /// > 0 enables scoped shipping *and* GC with this sweep hysteresis).
    pub gc: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            n_sites: 3,
            clients: 3,
            txns_per_client: 3,
            ops_per_txn: 2,
            objects: 1,
            max_time: 30_000,
            bounds: ExploreBounds {
                depth: 4,
                ..ExploreBounds::default()
            },
            weaken_read_quorum: false,
            skip_final_ack: false,
            shards: 1,
            batch: 1,
            gc: 0,
        }
    }
}

/// One sampled (or replayed) fault plan: everything that varies between
/// the runs of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    /// Workload + simulation seed.
    pub seed: u64,
    /// Network delays and fault probabilities.
    pub net: NetworkConfig,
    /// Crash and partition intervals.
    pub faults: FaultPlan,
    /// Repository durability class.
    pub durability: Durability,
    /// Whether committed-prefix compaction runs.
    pub compact: bool,
    /// Periodic anti-entropy interval, if enabled.
    pub anti_entropy: Option<SimTime>,
    /// Narrow (minimal-quorum) fan-out instead of broadcast. Sound on its
    /// own — quorum intersection is the *only* thing keeping it sound,
    /// which is exactly what makes it the sharpest backdrop for the
    /// oracle's weakened-quorum self-test.
    pub narrow: bool,
    /// The fault profile this plan was sampled from ("replay" when
    /// parsed back from a spec).
    pub profile: String,
    /// Object-space shards the run used (1 = unsharded). Carried in the
    /// plan so a spec shrunk out of a sharded sweep replays under the
    /// same tuning even without the sweep's `--shards` flag.
    pub shards: u16,
    /// Op batching / pipelining degree the run used (1 = off), carried
    /// for the same reason as `shards`.
    pub batch: u32,
    /// Status-GC batch the run used (0 = full shipping, no GC), carried
    /// for the same reason as `shards`.
    pub gc: u64,
}

impl ChaosPlan {
    /// Deterministically samples plan number `idx` of the sweep rooted at
    /// `base_seed`: profile, fault intervals, durability class, and
    /// tuning coins all come from one derived RNG stream, so the plan is
    /// identical no matter which thread draws it.
    pub fn sample(base_seed: u64, idx: u64, cfg: &ChaosConfig) -> ChaosPlan {
        let mut rng = StdRng::seed_from_u64(derive_seed(base_seed, idx));
        let profile = &PROFILES[rng.gen_range(0..PROFILES.len())];
        let net = NetworkConfig {
            min_delay: 1,
            max_delay: 10,
            drop_prob: profile.drop_prob,
            dup_prob: profile.dup_prob,
            reorder_window: profile.reorder_window,
        };
        let h = cfg.max_time.max(100);
        let mut faults = FaultPlan::none();
        for _ in 0..rng.gen_range(0..=2u32) {
            let proc = rng.gen_range(0..cfg.n_sites);
            let from = rng.gen_range(1..h / 2);
            let len = rng.gen_range(h / 20..=h / 4);
            faults.crash(proc, from, (from + len).min(h));
        }
        if rng.gen_bool(0.3) {
            let proc = rng.gen_range(0..cfg.n_sites);
            let from = rng.gen_range(1..h / 2);
            let len = rng.gen_range(h / 20..=h / 4);
            faults.partition([proc], from, (from + len).min(h));
        }
        let durability = if rng.gen_bool(0.5) {
            Durability::Stable
        } else {
            Durability::Volatile { wal: true }
        };
        let compact = rng.gen_bool(0.25);
        let anti_entropy = if rng.gen_bool(0.25) {
            Some(rng.gen_range(40..200))
        } else {
            None
        };
        let narrow = rng.gen_bool(0.25);
        ChaosPlan {
            seed: rng.gen_range(0..u64::MAX),
            net,
            faults,
            durability,
            compact,
            anti_entropy,
            narrow,
            profile: profile.name.to_string(),
            shards: cfg.shards,
            batch: cfg.batch,
            gc: cfg.gc,
        }
    }

    /// Serializes the plan as a one-line replay spec (`seed=…;net=…;…`),
    /// the exact inverse of [`ChaosPlan::parse`].
    pub fn encode(&self) -> String {
        let dur = match self.durability {
            Durability::Stable => "stable",
            Durability::Volatile { wal: true } => "wal",
            Durability::Volatile { wal: false } => "amnesia",
        };
        let mut s = format!(
            "seed={};net={},{},{},{},{};dur={dur};compact={};ae={};fan={}",
            self.seed,
            self.net.min_delay,
            self.net.max_delay,
            self.net.drop_prob,
            self.net.dup_prob,
            self.net.reorder_window,
            u8::from(self.compact),
            self.anti_entropy.unwrap_or(0),
            if self.narrow { "n" } else { "b" },
        );
        // Tuning fields ride along only when non-default, so specs from
        // unsharded sweeps (including the long-standing golden plans)
        // keep their exact historical rendering.
        if self.shards > 1 {
            s.push_str(&format!(";shards={}", self.shards));
        }
        if self.batch > 1 {
            s.push_str(&format!(";batch={}", self.batch));
        }
        if self.gc > 0 {
            s.push_str(&format!(";gc={}", self.gc));
        }
        for c in self.faults.crashes() {
            s.push_str(&format!(";crash={}@{}-{}", c.proc, c.from, c.until));
        }
        for p in self.faults.partitions() {
            let block: Vec<String> = p.block.iter().map(u32::to_string).collect();
            s.push_str(&format!(";part={}@{}-{}", block.join("+"), p.from, p.until));
        }
        s
    }

    /// Parses a replay spec produced by [`ChaosPlan::encode`].
    ///
    /// # Errors
    ///
    /// A description of the first malformed field.
    pub fn parse(spec: &str) -> Result<ChaosPlan, String> {
        let mut plan = ChaosPlan {
            seed: 0,
            net: NetworkConfig::default(),
            faults: FaultPlan::none(),
            durability: Durability::Stable,
            compact: false,
            anti_entropy: None,
            narrow: false,
            profile: "replay".to_string(),
            shards: 1,
            batch: 1,
            gc: 0,
        };
        use crate::spec::num;
        fn interval(v: &str, what: &str) -> Result<(u32, u64, u64), String> {
            let (who, span) = v
                .split_once('@')
                .ok_or_else(|| format!("bad {what}: {v:?} (want who@from-until)"))?;
            let (from, until) = span
                .split_once('-')
                .ok_or_else(|| format!("bad {what}: {v:?} (want who@from-until)"))?;
            Ok((num(who, what)?, num(from, what)?, num(until, what)?))
        }
        for (key, value) in crate::spec::fields(spec)? {
            match key {
                "seed" => plan.seed = num(value, "seed")?,
                "net" => {
                    let parts: Vec<&str> = value.split(',').collect();
                    if parts.len() != 5 {
                        return Err(format!(
                            "bad net: {value:?} (want min,max,drop,dup,reorder)"
                        ));
                    }
                    plan.net = NetworkConfig {
                        min_delay: num(parts[0], "net min_delay")?,
                        max_delay: num(parts[1], "net max_delay")?,
                        drop_prob: num(parts[2], "net drop_prob")?,
                        dup_prob: num(parts[3], "net dup_prob")?,
                        reorder_window: num(parts[4], "net reorder_window")?,
                    };
                }
                "dur" => {
                    plan.durability = match value {
                        "stable" => Durability::Stable,
                        "wal" => Durability::Volatile { wal: true },
                        "amnesia" => Durability::Volatile { wal: false },
                        other => return Err(format!("bad dur: {other:?}")),
                    }
                }
                "compact" => plan.compact = num::<u8>(value, "compact")? != 0,
                "ae" => {
                    let iv: u64 = num(value, "ae")?;
                    plan.anti_entropy = (iv > 0).then_some(iv);
                }
                "fan" => {
                    plan.narrow = match value {
                        "n" => true,
                        "b" => false,
                        other => return Err(format!("bad fan: {other:?}")),
                    }
                }
                "shards" => plan.shards = num(value, "shards")?,
                "batch" => plan.batch = num(value, "batch")?,
                "gc" => plan.gc = num(value, "gc")?,
                "crash" => {
                    let (proc, from, until) = interval(value, "crash")?;
                    plan.faults.crash(proc, from, until);
                }
                "part" => {
                    let (block, span) = value
                        .split_once('@')
                        .ok_or_else(|| format!("bad part: {value:?}"))?;
                    let (from, until) = span
                        .split_once('-')
                        .ok_or_else(|| format!("bad part: {value:?}"))?;
                    let procs: Result<Vec<u32>, String> =
                        block.split('+').map(|p| num(p, "part member")).collect();
                    plan.faults
                        .partition(procs?, num(from, "part")?, num(until, "part")?);
                }
                other => return Err(format!("unknown field: {other:?}")),
            }
        }
        Ok(plan)
    }

    /// Every one-step simplification of this plan: one fault interval
    /// removed, one network fault knob zeroed, or one tuning knob reset.
    /// The greedy shrinker walks these until none still reproduces.
    pub fn shrink_candidates(&self) -> Vec<ChaosPlan> {
        let mut out = Vec::new();
        for i in 0..self.faults.crashes().len() {
            let mut p = self.clone();
            p.faults = self.faults.without_crash(i);
            out.push(p);
        }
        for i in 0..self.faults.partitions().len() {
            let mut p = self.clone();
            p.faults = self.faults.without_partition(i);
            out.push(p);
        }
        if self.net.drop_prob > 0.0 {
            let mut p = self.clone();
            p.net.drop_prob = 0.0;
            out.push(p);
        }
        if self.net.dup_prob > 0.0 {
            let mut p = self.clone();
            p.net.dup_prob = 0.0;
            out.push(p);
        }
        if self.net.reorder_window > 0 {
            let mut p = self.clone();
            p.net.reorder_window = 0;
            out.push(p);
        }
        if self.durability != Durability::Stable {
            let mut p = self.clone();
            p.durability = Durability::Stable;
            out.push(p);
        }
        if self.compact {
            let mut p = self.clone();
            p.compact = false;
            out.push(p);
        }
        if self.anti_entropy.is_some() {
            let mut p = self.clone();
            p.anti_entropy = None;
            out.push(p);
        }
        if self.narrow {
            let mut p = self.clone();
            p.narrow = false;
            out.push(p);
        }
        if self.shards > 1 {
            let mut p = self.clone();
            p.shards = 1;
            out.push(p);
        }
        if self.batch > 1 {
            let mut p = self.clone();
            p.batch = 1;
            out.push(p);
        }
        if self.gc > 0 {
            let mut p = self.clone();
            p.gc = 0;
            out.push(p);
        }
        out
    }
}

/// Greedily shrinks `plan`: repeatedly adopts the first one-step
/// simplification for which `still_fails` holds, until the plan is
/// locally minimal (every further simplification stops reproducing).
pub fn shrink(mut plan: ChaosPlan, mut still_fails: impl FnMut(&ChaosPlan) -> bool) -> ChaosPlan {
    loop {
        let Some(next) = plan
            .shrink_candidates()
            .into_iter()
            .find(|c| still_fails(c))
        else {
            return plan;
        };
        plan = next;
    }
}

/// Runs one plan under `protocol` and audits it with the safety oracle.
///
/// # Errors
///
/// The builder's validation errors (a hand-written replay spec can carry
/// inconsistent delays or probabilities).
pub fn run_plan<S: Classified + Enumerable>(
    protocol: &Protocol,
    cfg: &ChaosConfig,
    plan: &ChaosPlan,
) -> Result<(RunReport<S>, SafetyReport), ReplicationError> {
    let alphabet = S::invocations();
    let workload = generate(
        WorkloadSpec {
            clients: cfg.clients,
            txns_per_client: cfg.txns_per_client,
            ops_per_txn: cfg.ops_per_txn,
            objects: cfg.objects,
            seed: plan.seed,
        },
        |rng| alphabet[rng.gen_range(0..alphabet.len())].clone(),
    );
    let mut tuning = TuningConfig::default().durability(plan.durability);
    if plan.compact {
        tuning = tuning.compact_logs();
    }
    if let Some(iv) = plan.anti_entropy {
        tuning = tuning.anti_entropy(iv);
    }
    if plan.narrow {
        tuning = tuning.fanout(Fanout::Narrow);
    }
    if cfg.weaken_read_quorum {
        tuning = tuning.unsound_weaken_read_quorum();
    }
    if cfg.skip_final_ack {
        tuning = tuning.unsound_skip_final_ack();
    }
    // The plan's own tuning fields win (a shrunk spec must replay under
    // the tuning it failed with); the sweep-level config fills in when
    // the plan carries the defaults.
    let shards = if plan.shards != 1 {
        plan.shards
    } else {
        cfg.shards
    };
    let batch = if plan.batch != 1 {
        plan.batch
    } else {
        cfg.batch
    };
    tuning = tuning.shards(shards).batch(batch);
    let gc = if plan.gc != 0 { plan.gc } else { cfg.gc };
    if gc > 0 {
        tuning = tuning.scoped_statuses().status_gc(gc);
    }
    let report = RunBuilder::<S>::new(cfg.n_sites)
        .protocol(ProtocolConfig::new(protocol.clone()).txn_retries(2))
        .network(plan.net)
        .faults(plan.faults.clone())
        .tuning(tuning)
        .seed(plan.seed)
        .max_time(cfg.max_time)
        .workload(workload)
        .run()?;
    let safety = report.safety(cfg.bounds);
    Ok((report, safety))
}

/// The summary one sweep run reduces to (everything the drivers print or
/// aggregate; deliberately free of histograms and wall-clock, so sweep
/// output is byte-identical at any thread count).
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// The plan that ran.
    pub plan: ChaosPlan,
    /// Committed transactions.
    pub committed: u64,
    /// Conflict aborts.
    pub aborted_conflict: u64,
    /// Unavailability aborts.
    pub aborted_unavailable: u64,
    /// Messages the network dropped.
    pub msgs_dropped: u64,
    /// Messages the network duplicated.
    pub msgs_duplicated: u64,
    /// Messages the network reordered.
    pub msgs_reordered: u64,
    /// Crash recoveries repositories performed.
    pub recoveries: u64,
    /// Full-log fallbacks repositories served.
    pub full_log_fallbacks: u64,
    /// Rendered safety violations (empty on a clean run).
    pub violations: Vec<String>,
}

/// Runs plans `0..runs` of the sweep rooted at `base_seed` across
/// `threads` worker threads (0 = all cores). Results are in plan order
/// and independent of the thread count.
pub fn sweep<S: Classified + Enumerable>(
    protocol: &Protocol,
    cfg: &ChaosConfig,
    base_seed: u64,
    runs: u64,
    threads: usize,
) -> Vec<ChaosOutcome> {
    let idxs: Vec<u64> = (0..runs).collect();
    map_indexed(threads, &idxs, |_, idx| {
        let plan = ChaosPlan::sample(base_seed, *idx, cfg);
        run_outcome::<S>(protocol, cfg, plan)
    })
}

/// Runs one plan and reduces it to its [`ChaosOutcome`].
pub fn run_outcome<S: Classified + Enumerable>(
    protocol: &Protocol,
    cfg: &ChaosConfig,
    plan: ChaosPlan,
) -> ChaosOutcome {
    let (report, safety) =
        run_plan::<S>(protocol, cfg, &plan).expect("sampled chaos plans are always valid");
    let stats = report.stats();
    let t = report.telemetry();
    ChaosOutcome {
        plan,
        committed: stats.committed as u64,
        aborted_conflict: stats.aborted_conflict as u64,
        aborted_unavailable: stats.aborted_unavailable as u64,
        msgs_dropped: t.msgs_dropped,
        msgs_duplicated: t.msgs_duplicated,
        msgs_reordered: t.msgs_reordered,
        recoveries: t.recoveries,
        full_log_fallbacks: t.full_log_fallbacks,
        violations: safety
            .violations()
            .iter()
            .map(ToString::to_string)
            .collect(),
    }
}

/// Shrinks a failing plan to a locally minimal one that still fails the
/// oracle under the same protocol and workload shape.
pub fn shrink_failure<S: Classified + Enumerable>(
    protocol: &Protocol,
    cfg: &ChaosConfig,
    plan: ChaosPlan,
) -> ChaosPlan {
    shrink(plan, |candidate| {
        run_plan::<S>(protocol, cfg, candidate)
            .map(|(_, safety)| !safety.is_ok())
            .unwrap_or(false)
    })
}

/// Per-profile aggregation of a sweep, sorted by profile name — the
/// stable shape `qcc chaos` and the `exp_chaos` bench print.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileStats {
    /// Profile name.
    pub profile: String,
    /// Runs sampled with this profile.
    pub runs: u64,
    /// Sum of committed transactions.
    pub committed: u64,
    /// Sum of conflict aborts.
    pub aborted_conflict: u64,
    /// Sum of unavailability aborts.
    pub aborted_unavailable: u64,
    /// Sum of dropped messages.
    pub msgs_dropped: u64,
    /// Sum of duplicated messages.
    pub msgs_duplicated: u64,
    /// Sum of reordered messages.
    pub msgs_reordered: u64,
    /// Sum of crash recoveries.
    pub recoveries: u64,
    /// Sum of full-log fallbacks.
    pub full_log_fallbacks: u64,
    /// Sum of safety violations (must be 0 on a correct tree).
    pub violations: u64,
}

impl ProfileStats {
    /// Aborts (any cause) as a fraction of decided transactions.
    pub fn abort_rate(&self) -> f64 {
        let decided = self.committed + self.aborted_conflict + self.aborted_unavailable;
        if decided == 0 {
            0.0
        } else {
            (self.aborted_conflict + self.aborted_unavailable) as f64 / decided as f64
        }
    }
}

/// Folds sweep outcomes into per-profile stats, sorted by profile name.
pub fn aggregate(outcomes: &[ChaosOutcome]) -> Vec<ProfileStats> {
    let mut by_name: std::collections::BTreeMap<&str, ProfileStats> =
        std::collections::BTreeMap::new();
    for o in outcomes {
        let p = by_name.entry(o.plan.profile.as_str()).or_default();
        p.profile = o.plan.profile.clone();
        p.runs += 1;
        p.committed += o.committed;
        p.aborted_conflict += o.aborted_conflict;
        p.aborted_unavailable += o.aborted_unavailable;
        p.msgs_dropped += o.msgs_dropped;
        p.msgs_duplicated += o.msgs_duplicated;
        p.msgs_reordered += o.msgs_reordered;
        p.recoveries += o.recoveries;
        p.full_log_fallbacks += o.full_log_fallbacks;
        p.violations += o.violations.len() as u64;
    }
    by_name.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_spec_roundtrips() {
        let cfg = ChaosConfig::default();
        for idx in 0..20 {
            let plan = ChaosPlan::sample(42, idx, &cfg);
            let mut back = ChaosPlan::parse(&plan.encode()).expect("own spec parses");
            // The profile label is sweep metadata, not plan content.
            back.profile.clone_from(&plan.profile);
            assert_eq!(back, plan, "spec {}", plan.encode());
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ChaosPlan::parse("seed=abc").is_err());
        assert!(ChaosPlan::parse("net=1,2").is_err());
        assert!(ChaosPlan::parse("dur=granite").is_err());
        assert!(ChaosPlan::parse("crash=1@nope").is_err());
        assert!(ChaosPlan::parse("what=ever").is_err());
        assert!(ChaosPlan::parse("justtext").is_err());
    }

    #[test]
    fn sampling_is_a_pure_function_of_seed_and_index() {
        let cfg = ChaosConfig::default();
        for idx in 0..10 {
            assert_eq!(
                ChaosPlan::sample(7, idx, &cfg),
                ChaosPlan::sample(7, idx, &cfg)
            );
        }
        // Different indices give different plans (with overwhelming
        // probability — check the seed alone).
        assert_ne!(
            ChaosPlan::sample(7, 0, &cfg).seed,
            ChaosPlan::sample(7, 1, &cfg).seed
        );
    }

    #[test]
    fn shrink_reaches_a_fixed_point() {
        let cfg = ChaosConfig::default();
        let plan = ChaosPlan::sample(3, 4, &cfg);
        // An always-failing predicate shrinks to the empty-fault,
        // clean-network, stable plan — the global minimum.
        let minimal = shrink(plan, |_| true);
        assert!(minimal.faults.is_empty());
        assert_eq!(minimal.net.drop_prob, 0.0);
        assert_eq!(minimal.net.dup_prob, 0.0);
        assert_eq!(minimal.net.reorder_window, 0);
        assert_eq!(minimal.durability, Durability::Stable);
        assert!(!minimal.compact);
        assert!(minimal.anti_entropy.is_none());
        // A never-failing predicate keeps the plan unchanged.
        let plan = ChaosPlan::sample(3, 4, &cfg);
        assert_eq!(shrink(plan.clone(), |_| false), plan);
    }
}
