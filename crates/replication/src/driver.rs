//! The sans-I/O boundary: protocol logic talks to the world only through
//! [`Io`], and a whole node is a [`Driver`] — a pure state machine fed
//! [`Input`]s that emits effects ([`Output`]s) through whatever backend
//! hosts it.
//!
//! The client, repository, and reconfigurer state machines in this crate
//! never touch `sim::engine`, wall clocks, sockets, or an RNG directly:
//! every observation (time, own id, entropy) and every effect (message
//! sends, timers, trace records) goes through the [`Io`] trait. Two hosts
//! implement it:
//!
//! * the deterministic simulator's [`Ctx`] — drivers running under the
//!   DES make **exactly** the same calls in the same order as the
//!   pre-extraction code, so traces, RNG streams, and bench outputs stay
//!   byte-identical (verified by the golden gates in `verify.sh`);
//! * [`CollectIo`] — a buffered implementation for real-time backends
//!   (threads + channels, TCP): the host stamps in the current time and
//!   entropy, lets the driver run, and drains the emitted [`Output`]s to
//!   its transport. This is the pure `handle(Input) -> Vec<Output>` form.
//!
//! [`DesAdapter`] is the thin shim welding a [`Driver`] back onto the
//! simulator's [`Process`] trait; `replication::backend` hosts the same
//! drivers on real threads.

use quorumcc_sim::trace::TraceAction;
use quorumcc_sim::{Ctx, ProcId, Process, SimTime};
use rand::Rng as _;

/// Everything a protocol state machine may observe or effect. The only
/// window protocol code has onto the outside world — no simulator
/// handles, no clocks, no ambient randomness.
///
/// Implementations: the simulator's [`Ctx`] (live, deterministic) and
/// [`CollectIo`] (buffered, for real-time backends).
pub trait Io<M> {
    /// The current logical time: simulated ticks under the DES, a
    /// host-supplied monotonic tick count on real backends.
    fn now(&self) -> SimTime;

    /// This node's process id.
    fn me(&self) -> ProcId;

    /// Sends `msg` to `to` (delivery is the backend's business).
    fn send(&mut self, to: ProcId, msg: M);

    /// Sends a message standing for `weight` logical payloads — a batch
    /// envelope. Backends deliver it as one message but may account for
    /// the logical payload count separately.
    fn send_weighted(&mut self, to: ProcId, msg: M, weight: u64);

    /// Requests a [`Input::Timer`] callback with `token` after `delay`
    /// ticks (backends clamp `delay` to at least 1).
    fn set_timer(&mut self, delay: SimTime, token: u64);

    /// A uniform draw in `[0, bound)` (`bound` is clamped to at least 1).
    /// The *only* entropy available to protocol code — backoff jitter and
    /// peer selection route through here, so the DES can keep its seeded
    /// stream and real backends can inject their own.
    fn rand_below(&mut self, bound: u64) -> u64;

    /// Records a protocol-level trace event (no-op when tracing is off).
    fn trace(&mut self, action: TraceAction);

    /// Whether tracing is enabled — lets callers skip building expensive
    /// event payloads when nobody is listening.
    fn tracing(&self) -> bool;
}

/// The simulator's context *is* an [`Io`]: drivers under the DES call the
/// engine directly, preserving the exact call order (and RNG draw
/// sequence) of the pre-extraction code.
impl<M> Io<M> for Ctx<'_, M> {
    fn now(&self) -> SimTime {
        Ctx::now(self)
    }

    fn me(&self) -> ProcId {
        Ctx::me(self)
    }

    fn send(&mut self, to: ProcId, msg: M) {
        Ctx::send(self, to, msg);
    }

    fn send_weighted(&mut self, to: ProcId, msg: M, weight: u64) {
        Ctx::send_weighted(self, to, msg, weight);
    }

    fn set_timer(&mut self, delay: SimTime, token: u64) {
        Ctx::set_timer(self, delay, token);
    }

    fn rand_below(&mut self, bound: u64) -> u64 {
        // On 64-bit hosts this draws the identical `next_u64` sequence the
        // old in-protocol `gen_range(0..n_usize)` sites drew, keeping
        // seeded runs byte-identical across the extraction.
        self.rng().gen_range(0..bound.max(1))
    }

    fn trace(&mut self, action: TraceAction) {
        Ctx::trace(self, action);
    }

    fn tracing(&self) -> bool {
        Ctx::tracing(self)
    }
}

/// One stimulus delivered to a [`Driver`]: the complete input alphabet of
/// a node. Backends produce these; drivers consume them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Input<M> {
    /// The node boots (delivered exactly once, before anything else).
    Start,
    /// A message arrived from `from`.
    Deliver {
        /// The sending process.
        from: ProcId,
        /// The delivered payload.
        msg: M,
    },
    /// A timer armed via [`Io::set_timer`] fired.
    Timer {
        /// The token the timer was armed with.
        token: u64,
    },
    /// The node recovered from a crash (volatile state was lost).
    Recover,
}

/// One effect a [`Driver`] requested, as buffered by [`CollectIo`]: the
/// complete output alphabet of a node. Real-time backends drain these
/// into their transport; the DES skips the buffer entirely and applies
/// effects live through [`Ctx`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Output<M> {
    /// Deliver `msg` to `to`.
    Send {
        /// The destination process.
        to: ProcId,
        /// The payload.
        msg: M,
        /// Logical payloads this message stands for (1 unless batched).
        weight: u64,
    },
    /// Arm a timer: feed back [`Input::Timer`] with `token` after
    /// `delay` ticks.
    SetTimer {
        /// Ticks until the timer fires.
        delay: SimTime,
        /// The token to echo back.
        token: u64,
    },
}

/// A transport-agnostic protocol node: a state machine whose entire
/// interaction with the world is `handle(io, input)`. The same driver
/// value runs unmodified under the deterministic simulator (via
/// [`DesAdapter`]) and under real concurrency (`replication::backend`).
pub trait Driver<M> {
    /// Feeds one input, applying effects through `io`.
    fn handle(&mut self, io: &mut dyn Io<M>, input: Input<M>);
}

/// Welds a [`Driver`] onto the simulator: implements [`Process`] by
/// translating engine callbacks into [`Input`]s and handing the engine's
/// [`Ctx`] straight through as the driver's [`Io`]. Zero translation on
/// the effect side — no buffering, no replay — which is what makes the
/// refactor byte-invisible to seeded runs.
#[derive(Debug, Clone)]
pub struct DesAdapter<D>(pub D);

impl<D> DesAdapter<D> {
    /// Wraps a driver for the simulator.
    pub fn new(driver: D) -> Self {
        DesAdapter(driver)
    }

    /// The hosted driver.
    pub fn driver(&self) -> &D {
        &self.0
    }

    /// The hosted driver, mutably.
    pub fn driver_mut(&mut self) -> &mut D {
        &mut self.0
    }

    /// Unwraps the hosted driver.
    pub fn into_driver(self) -> D {
        self.0
    }
}

impl<M, D: Driver<M>> Process<M> for DesAdapter<D> {
    fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {
        self.0.handle(ctx, Input::Start);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: ProcId, msg: M) {
        self.0.handle(ctx, Input::Deliver { from, msg });
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, token: u64) {
        self.0.handle(ctx, Input::Timer { token });
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_, M>) {
        self.0.handle(ctx, Input::Recover);
    }
}

/// A buffered [`Io`] for real-time backends: the host stamps in the
/// current tick before each [`Driver::handle`] call, the driver's effects
/// accumulate as [`Output`]s, and the host drains them into its
/// transport. This is the pure `handle(Input) -> Vec<Output>` face of the
/// sans-I/O core.
///
/// Entropy is a private splitmix64 stream seeded per node — real
/// backends make no determinism promise, they only need *well-spread*
/// jitter, and keeping the generator inside the `Io` keeps protocol code
/// free of any direct RNG dependency.
#[derive(Debug)]
pub struct CollectIo<M> {
    now: SimTime,
    me: ProcId,
    entropy: u64,
    outputs: Vec<Output<M>>,
}

impl<M> CollectIo<M> {
    /// An output collector for node `me`, with its entropy stream seeded
    /// from `seed`.
    pub fn new(me: ProcId, seed: u64) -> Self {
        CollectIo {
            now: 0,
            me,
            // Avoid the all-zeros fixed point.
            entropy: seed ^ 0x9e37_79b9_7f4a_7c15,
            outputs: Vec::new(),
        }
    }

    /// Stamps the logical time the next `handle` call will observe.
    pub fn set_now(&mut self, now: SimTime) {
        self.now = now;
    }

    /// Drains the effects buffered since the last call.
    pub fn take_outputs(&mut self) -> Vec<Output<M>> {
        std::mem::take(&mut self.outputs)
    }

    /// Whether any effects are buffered.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }

    fn next_entropy(&mut self) -> u64 {
        // splitmix64: tiny, statistically fine for jitter, no deps.
        self.entropy = self.entropy.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.entropy;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl<M> Io<M> for CollectIo<M> {
    fn now(&self) -> SimTime {
        self.now
    }

    fn me(&self) -> ProcId {
        self.me
    }

    fn send(&mut self, to: ProcId, msg: M) {
        self.outputs.push(Output::Send { to, msg, weight: 1 });
    }

    fn send_weighted(&mut self, to: ProcId, msg: M, weight: u64) {
        self.outputs.push(Output::Send {
            to,
            msg,
            weight: weight.max(1),
        });
    }

    fn set_timer(&mut self, delay: SimTime, token: u64) {
        self.outputs.push(Output::SetTimer {
            delay: delay.max(1),
            token,
        });
    }

    fn rand_below(&mut self, bound: u64) -> u64 {
        self.next_entropy() % bound.max(1)
    }

    fn trace(&mut self, _action: TraceAction) {}

    fn tracing(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A driver that echoes every delivered message back and arms one
    /// timer per tick it sees. `kick` names a peer to poke at startup.
    struct Echo {
        delivered: u32,
        kick: Option<ProcId>,
    }

    impl Driver<u32> for Echo {
        fn handle(&mut self, io: &mut dyn Io<u32>, input: Input<u32>) {
            match input {
                Input::Start => {
                    if let Some(to) = self.kick {
                        io.send(to, 100);
                    }
                    io.set_timer(5, 1);
                }
                Input::Deliver { from, msg } => {
                    self.delivered += 1;
                    io.send(from, msg + 1);
                }
                Input::Timer { token } => {
                    let jitter = io.rand_below(4);
                    io.set_timer(1 + jitter, token);
                }
                Input::Recover => {}
            }
        }
    }

    #[test]
    fn collect_io_buffers_outputs_in_call_order() {
        let mut io = CollectIo::new(3, 42);
        let mut d = Echo {
            delivered: 0,
            kick: None,
        };
        d.handle(&mut io, Input::Start);
        d.handle(
            &mut io,
            Input::Deliver {
                from: 7,
                msg: 10u32,
            },
        );
        let outs = io.take_outputs();
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0], Output::SetTimer { delay: 5, token: 1 });
        assert_eq!(
            outs[1],
            Output::Send {
                to: 7,
                msg: 11,
                weight: 1
            }
        );
        assert!(io.is_empty());
        assert_eq!(d.delivered, 1);
    }

    #[test]
    fn collect_io_clamps_weight_delay_and_bound() {
        let mut io: CollectIo<u32> = CollectIo::new(0, 0);
        Io::<u32>::send_weighted(&mut io, 1, 9, 0);
        Io::<u32>::set_timer(&mut io, 0, 2);
        let zero_bound = Io::<u32>::rand_below(&mut io, 0);
        assert_eq!(zero_bound, 0, "bound clamps to 1");
        let outs = io.take_outputs();
        assert_eq!(
            outs[0],
            Output::Send {
                to: 1,
                msg: 9,
                weight: 1
            }
        );
        assert_eq!(outs[1], Output::SetTimer { delay: 1, token: 2 });
    }

    #[test]
    fn collect_io_entropy_is_seed_deterministic() {
        let draws = |seed: u64| {
            let mut io: CollectIo<u32> = CollectIo::new(0, seed);
            (0..8)
                .map(|_| Io::<u32>::rand_below(&mut io, 1000))
                .collect::<Vec<_>>()
        };
        assert_eq!(draws(7), draws(7));
        assert_ne!(draws(7), draws(8));
        assert!(draws(7).iter().all(|v| *v < 1000));
    }

    #[test]
    fn des_adapter_runs_a_driver_under_the_engine() {
        use quorumcc_sim::{FaultPlan, NetworkConfig, Sim};
        let nodes = vec![
            DesAdapter::new(Echo {
                delivered: 0,
                kick: Some(1),
            }),
            DesAdapter::new(Echo {
                delivered: 0,
                kick: None,
            }),
        ];
        let mut sim = Sim::new(nodes, NetworkConfig::default(), FaultPlan::none(), 11);
        // Node 0 pokes node 1 at startup; echoes bounce until the horizon.
        sim.run(200);
        let bounced: u32 = (0..2)
            .map(|i| sim.process(i).driver().delivered)
            .sum::<u32>();
        assert!(bounced > 0, "messages flowed through the adapter");
    }
}
