//! Log entries and merge rules — the replicated object's state
//! representation (§3.2: "a replicated object's state is represented as a
//! log … partially replicated among the repositories").
//!
//! Beyond the paper's plain logs, this module carries the two mechanisms
//! that keep replica communication bounded:
//!
//! * **Checkpoints** ([`Checkpoint`]): a folded committed prefix. Once a
//!   repository knows the outcome and the complete entry set of every
//!   action below a horizon, it replays those entries into a per-op-class
//!   state summary and drops them from the log. The summary is exact: each
//!   op class gets the state produced by replaying *its own dependency
//!   closure* of the folded events in commit order, so a front-end
//!   evaluating from a checkpoint computes bit-identical responses to one
//!   replaying the raw prefix.
//! * **Versioned logs** ([`VersionedLog`]): a log plus a monotonic change
//!   journal, from which a repository serves [`LogDelta`]s — only the
//!   suffix a front-end has not seen yet — instead of cloning the whole
//!   log into every reply.

use quorumcc_model::{ActionId, Event, Sequential};
use quorumcc_sim::Timestamp;
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// Identifier of a replicated object within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId(pub u16);

impl std::fmt::Display for ObjId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// Identifier of a shard: a static partition block of the object space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u16);

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

/// The static object→shard partition: object `o` lives in shard
/// `o mod n`. Every object belongs to exactly one shard, so conflict
/// detection (which is per-object) never crosses a shard boundary — the
/// quorum-intersection requirement `ti + tf > n` only has to hold *within*
/// a shard, which is what lets each shard carry its own quorum map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    n: u16,
}

impl ShardMap {
    /// A partition into `n` shards (`n = 0` is treated as 1).
    pub fn new(n: u16) -> Self {
        ShardMap { n: n.max(1) }
    }

    /// Number of shards.
    pub fn count(&self) -> u16 {
        self.n
    }

    /// The shard an object belongs to.
    pub fn of(&self, obj: ObjId) -> ShardId {
        ShardId(obj.0 % self.n)
    }
}

impl Default for ShardMap {
    fn default() -> Self {
        ShardMap::new(1)
    }
}

/// The resolution of an action, as known by a repository.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionOutcome {
    /// Still running; its entries are tentative (they act as locks).
    Active,
    /// Committed with the given commit timestamp (hybrid serialization
    /// position).
    Committed(Timestamp),
    /// Aborted; its entries are garbage.
    Aborted,
}

impl ActionOutcome {
    /// Merge precedence: resolutions beat `Active`; resolutions are final.
    pub fn merge(self, other: ActionOutcome) -> ActionOutcome {
        match (self, other) {
            (ActionOutcome::Active, o) => o,
            (s, ActionOutcome::Active) => s,
            (s, o) => {
                debug_assert_eq!(s, o, "conflicting resolutions for one action");
                s
            }
        }
    }

    /// Whether this outcome is a final resolution.
    pub fn is_resolved(self) -> bool {
        !matches!(self, ActionOutcome::Active)
    }
}

/// One timestamped event record (§3.2: "a sequence of entries, each
/// consisting of a timestamp, an event, and an action identifier").
///
/// `begin_ts` carries the action's Begin timestamp so the static protocol
/// can serialize by Begin order without extra lookups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry<I, R> {
    /// Unique entry timestamp (Lamport: simulated time + issuing process).
    pub ts: Timestamp,
    /// The executing action.
    pub action: ActionId,
    /// The action's Begin timestamp.
    pub begin_ts: Timestamp,
    /// The recorded event.
    pub event: Event<I, R>,
}

/// Tuning knobs for committed-prefix compaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionConfig {
    /// Commits younger than `lag` ticks are never folded. The lag must
    /// comfortably exceed the network's delivery window: it is what keeps
    /// in-flight entries and resolutions from arriving below an already
    /// folded horizon.
    pub lag: u64,
    /// Skip folding while the raw log is shorter than this.
    pub min_entries: usize,
}

impl Default for CompactionConfig {
    fn default() -> Self {
        CompactionConfig {
            lag: 160,
            min_entries: 16,
        }
    }
}

/// A folded committed prefix: the serial-state summary plus the horizon
/// below which the raw entries were dropped.
///
/// The state is a type-erased `BTreeMap<&'static str, S::State>` mapping
/// each operation class to the state obtained by replaying, in commit
/// order, exactly the folded events in that class's dependency closure.
/// Keeping one state per op class (rather than one state total) is what
/// makes checkpointed evaluation *bit-exact*: the protocol replays a
/// closure-filtered sub-history, so the fold must filter the same way.
#[derive(Clone)]
pub struct Checkpoint {
    state: Arc<dyn Any + Send + Sync>,
    covered: BTreeMap<ActionId, Timestamp>,
    horizon: Timestamp,
    folded: u64,
}

impl Checkpoint {
    /// Builds a checkpoint over a nonempty covered set. `state` is the
    /// per-op-class state map; `folded` counts every raw entry folded into
    /// it (across the checkpoint's whole lineage).
    pub fn new<T: Any + Send + Sync>(
        state: T,
        covered: BTreeMap<ActionId, Timestamp>,
        folded: u64,
    ) -> Self {
        let horizon = covered
            .values()
            .copied()
            .max()
            .expect("checkpoint over an empty covered set");
        Checkpoint {
            state: Arc::new(state),
            covered,
            horizon,
            folded,
        }
    }

    /// The typed state summary, if `T` matches the folding spec.
    pub fn state_as<T: Any>(&self) -> Option<&T> {
        self.state.downcast_ref::<T>()
    }

    /// Commit timestamp of `action` if the checkpoint covers it.
    pub fn covers(&self, action: ActionId) -> Option<Timestamp> {
        self.covered.get(&action).copied()
    }

    /// The covered actions and their commit timestamps.
    pub fn covered(&self) -> &BTreeMap<ActionId, Timestamp> {
        &self.covered
    }

    /// The largest covered commit timestamp: every raw committed entry in
    /// a well-formed log serializes strictly after it.
    pub fn horizon(&self) -> Timestamp {
        self.horizon
    }

    /// Raw entries folded into this checkpoint's lineage.
    pub fn folded(&self) -> u64 {
        self.folded
    }

    /// Adoption order: more history wins.
    fn rank(&self) -> (Timestamp, usize) {
        (self.horizon, self.covered.len())
    }

    /// Whether this checkpoint's covered set contains all of `other`'s.
    fn covers_all_of(&self, other: &Checkpoint) -> bool {
        other.covered.keys().all(|a| self.covered.contains_key(a))
    }
}

impl std::fmt::Debug for Checkpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Checkpoint")
            .field("covered", &self.covered.len())
            .field("horizon", &self.horizon)
            .field("folded", &self.folded)
            .finish()
    }
}

impl PartialEq for Checkpoint {
    fn eq(&self, other: &Self) -> bool {
        // The state map is a deterministic function of the covered set
        // (same events, same commit order, same closures), so identity of
        // the covered set implies identity of the states.
        self.horizon == other.horizon
            && self.folded == other.folded
            && self.covered == other.covered
    }
}

impl Eq for Checkpoint {}

/// What a merge changed — the hook a [`VersionedLog`] uses to journal
/// mutations without the wire format carrying journals around.
#[derive(Debug, Clone, Default)]
pub struct MergeEffect {
    /// Timestamps of entries newly inserted.
    pub entries: Vec<Timestamp>,
    /// Actions whose recorded status changed.
    pub statuses: Vec<ActionId>,
    /// Whether a (larger) checkpoint was adopted.
    pub checkpoint: bool,
}

impl MergeEffect {
    /// Whether the merge changed anything.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.statuses.is_empty() && !self.checkpoint
    }
}

/// A per-object log plus the action resolutions it has heard of.
///
/// Merging is a CRDT-style join: entries union by unique timestamp,
/// statuses upgrade `Active → Committed/Aborted`, and checkpoints adopt
/// the larger of two nested covered sets. Front-ends write back whole
/// merged views, so information (including commit resolutions and
/// checkpoints) propagates transitively through quorum intersections —
/// this is what makes indirect dependencies (e.g. a PROM `Read` learning
/// of `Write`s through the `Seal` entry) work.
#[derive(Debug, Clone)]
pub struct ObjectLog<I, R> {
    entries: BTreeMap<Timestamp, LogEntry<I, R>>,
    statuses: BTreeMap<ActionId, ActionOutcome>,
    checkpoint: Option<Checkpoint>,
    gc_aborted: bool,
    /// Actions that ever inserted (or tried to insert) an entry here —
    /// the scope of statuses this log is obliged to carry. Survives
    /// aborted-entry GC (the tombstone must keep shipping to readers
    /// holding stale copies) and is pruned with the statuses it scopes:
    /// on checkpoint install and on status GC.
    touched: BTreeSet<ActionId>,
    /// Scoped status planting: when on, [`Self::resolve`] records only
    /// statuses of touched actions (everything else is irrelevant to
    /// evaluations of this object and would be pure gossip weight).
    scoped: bool,
}

impl<I: Clone, R: Clone> Default for ObjectLog<I, R> {
    fn default() -> Self {
        ObjectLog::new()
    }
}

impl<I: PartialEq, R: PartialEq> PartialEq for ObjectLog<I, R> {
    fn eq(&self, other: &Self) -> bool {
        // `gc_aborted` and `scoped` are local storage policies, and
        // `touched` is bookkeeping derived from them — none is log
        // content.
        self.entries == other.entries
            && self.statuses == other.statuses
            && self.checkpoint == other.checkpoint
    }
}

impl<I: Eq, R: Eq> Eq for ObjectLog<I, R> {}

impl<I: Clone, R: Clone> ObjectLog<I, R> {
    /// An empty log.
    pub fn new() -> Self {
        ObjectLog {
            entries: BTreeMap::new(),
            statuses: BTreeMap::new(),
            checkpoint: None,
            gc_aborted: false,
            touched: BTreeSet::new(),
            scoped: false,
        }
    }

    /// Number of raw entries (folded entries are not counted).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log has no raw entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Enables dropping the entries of aborted actions (their status
    /// tombstone is kept, so merges cannot resurrect them). Aborted
    /// entries are invisible to every protocol mode, so this is a pure
    /// storage optimization.
    pub fn set_gc_aborted(&mut self, on: bool) {
        self.gc_aborted = on;
    }

    /// Whether aborted-entry garbage collection is enabled.
    pub fn gc_aborted(&self) -> bool {
        self.gc_aborted
    }

    /// Enables scoped status planting: [`Self::resolve`] records only
    /// statuses of actions that touched this log. A refused status is
    /// never wrong to withhold — a reader treats a missing status as
    /// `Active`, and an action without entries here contributes nothing
    /// to this object's evaluations.
    pub fn set_scoped(&mut self, on: bool) {
        self.scoped = on;
    }

    /// Whether scoped status planting is enabled.
    pub fn scoped(&self) -> bool {
        self.scoped
    }

    /// Whether `action` ever inserted (or tried to insert) an entry here.
    pub fn is_touched(&self, action: ActionId) -> bool {
        self.touched.contains(&action)
    }

    /// Recorded statuses (the per-log gossip weight the scoped/GC
    /// machinery bounds).
    pub fn status_count(&self) -> usize {
        self.statuses.len()
    }

    /// The folded committed prefix, if any.
    pub fn checkpoint(&self) -> Option<&Checkpoint> {
        self.checkpoint.as_ref()
    }

    /// Adds one entry (idempotent — timestamps are unique). Entries of
    /// checkpoint-covered actions are skipped (their effect already lives
    /// in the summary; re-inserting would double-apply), as are entries of
    /// aborted actions under [`Self::set_gc_aborted`]. Returns whether the
    /// entry was newly stored.
    pub fn insert(&mut self, entry: LogEntry<I, R>) -> bool {
        if let Some(cp) = &self.checkpoint {
            if cp.covers(entry.action).is_some() {
                return false;
            }
        }
        // Touched even when the entry itself is refused below: the
        // action's status (e.g. the tombstone that justified dropping an
        // aborted entry) stays in this log's shipping scope.
        self.touched.insert(entry.action);
        if self.gc_aborted && self.status(entry.action) == ActionOutcome::Aborted {
            return false;
        }
        match self.entries.entry(entry.ts) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(entry);
                true
            }
            std::collections::btree_map::Entry::Occupied(_) => false,
        }
    }

    /// Records an action resolution (upgrades, never downgrades). Returns
    /// whether the recorded status changed.
    pub fn resolve(&mut self, action: ActionId, outcome: ActionOutcome) -> bool {
        if self
            .checkpoint
            .as_ref()
            .is_some_and(|cp| cp.covers(action).is_some())
        {
            return false; // implied Committed by the checkpoint
        }
        if self.scoped && !self.touched.contains(&action) && !self.statuses.contains_key(&action) {
            return false; // irrelevant here: no entries to interpret
        }
        let cur = self.statuses.get(&action).copied();
        let next = cur.unwrap_or(ActionOutcome::Active).merge(outcome);
        let changed = cur != Some(next);
        if changed {
            self.statuses.insert(action, next);
            if self.gc_aborted && next == ActionOutcome::Aborted {
                self.entries.retain(|_, e| e.action != action);
            }
        }
        changed
    }

    /// The outcome of `action` as known here (checkpoint-covered actions
    /// are committed by construction).
    pub fn status(&self, action: ActionId) -> ActionOutcome {
        if let Some(o) = self.statuses.get(&action) {
            return *o;
        }
        if let Some(cts) = self.checkpoint.as_ref().and_then(|cp| cp.covers(action)) {
            return ActionOutcome::Committed(cts);
        }
        ActionOutcome::Active
    }

    /// The recorded status, without the checkpoint fallback.
    pub fn status_entry(&self, action: ActionId) -> Option<ActionOutcome> {
        self.statuses.get(&action).copied()
    }

    /// Adopts `cp` if it strictly extends the current checkpoint (covers
    /// everything ours does, plus more). Covered raw entries and statuses
    /// are dropped — their information now lives in the summary. Divergent
    /// checkpoints (neither a superset) are refused: adopting one would
    /// orphan entries only the other summarizes.
    pub fn adopt_checkpoint(&mut self, cp: &Checkpoint) -> bool {
        if let Some(own) = &self.checkpoint {
            if cp.rank() <= own.rank() || !cp.covers_all_of(own) {
                return false;
            }
        }
        self.install_checkpoint(cp.clone());
        true
    }

    /// Unconditionally installs `cp`, dropping covered entries/statuses.
    /// Callers (the repository fold, [`Self::adopt_checkpoint`]) guarantee
    /// `cp` extends any current checkpoint.
    pub fn install_checkpoint(&mut self, cp: Checkpoint) {
        self.entries.retain(|_, e| cp.covers(e.action).is_none());
        self.statuses.retain(|a, _| cp.covers(*a).is_none());
        self.touched.retain(|a| cp.covers(*a).is_none());
        self.checkpoint = Some(cp);
    }

    /// Drops every trace of `action` (entries, status, touch scope).
    /// Used by the repository's write-intake sanitizer to refuse
    /// resurrection of content below a durable resolution frontier.
    pub fn remove_action(&mut self, action: ActionId) {
        self.entries.retain(|_, e| e.action != action);
        self.statuses.remove(&action);
        self.touched.remove(&action);
    }

    /// Status garbage collection: drops resolution records that `stale`
    /// declares globally durable (every current member is known to hold
    /// the resolution). Aborted actions lose their tombstone *and* their
    /// entries (aborted entries are invisible to every protocol mode);
    /// committed actions lose their status only when no entry of theirs
    /// remains here (entry-bearing commit statuses are still needed to
    /// read the entries, and are pruned by checkpoint folding instead).
    /// Returns the number of statuses dropped.
    pub fn gc_below(&mut self, stale: impl Fn(ActionId) -> bool) -> u64 {
        let doomed: Vec<(ActionId, ActionOutcome)> = self
            .statuses
            .iter()
            .filter(|(a, o)| match o {
                ActionOutcome::Aborted => stale(**a),
                ActionOutcome::Committed(_) => {
                    stale(**a) && !self.entries.values().any(|e| e.action == **a)
                }
                ActionOutcome::Active => false,
            })
            .map(|(a, o)| (*a, *o))
            .collect();
        for (a, o) in &doomed {
            self.statuses.remove(a);
            self.touched.remove(a);
            if *o == ActionOutcome::Aborted {
                self.entries.retain(|_, e| e.action != *a);
            }
        }
        doomed.len() as u64
    }

    /// Merges another log into this one (entry union + status upgrade +
    /// checkpoint adoption), reporting what changed.
    pub fn merge(&mut self, other: &ObjectLog<I, R>) -> MergeEffect {
        let mut effect = MergeEffect::default();
        if let Some(cp) = &other.checkpoint {
            effect.checkpoint = self.adopt_checkpoint(cp);
        }
        for e in other.entries.values() {
            let ts = e.ts;
            if self.insert(e.clone()) {
                effect.entries.push(ts);
            }
        }
        for (a, o) in &other.statuses {
            if self.resolve(*a, *o) {
                effect.statuses.push(*a);
            }
        }
        effect
    }

    /// Entries in timestamp order.
    pub fn entries(&self) -> impl Iterator<Item = &LogEntry<I, R>> {
        self.entries.values()
    }

    /// The entry at `ts`, if present.
    pub fn get(&self, ts: Timestamp) -> Option<&LogEntry<I, R>> {
        self.entries.get(&ts)
    }

    /// Known statuses.
    pub fn statuses(&self) -> impl Iterator<Item = (ActionId, ActionOutcome)> + '_ {
        self.statuses.iter().map(|(a, o)| (*a, *o))
    }

    /// Every action known resolved: recorded resolutions plus everything
    /// the checkpoint covers (covered ⇒ committed).
    pub fn resolved_actions(&self) -> impl Iterator<Item = ActionId> + '_ {
        self.statuses
            .iter()
            .filter(|(_, o)| o.is_resolved())
            .map(|(a, _)| *a)
            .chain(
                self.checkpoint
                    .iter()
                    .flat_map(|cp| cp.covered.keys().copied()),
            )
    }
}

/// One incremental reply payload: the changes between two versions of a
/// repository's log, or a full (checkpoint-rooted) transfer when the
/// requested frontier fell off the journal.
#[derive(Debug, Clone)]
pub struct LogDelta<I, R> {
    /// The frontier this delta starts from (the `since` the reader sent).
    pub base: u64,
    /// The repository's log version after these changes.
    pub head: u64,
    /// Whether this is a full transfer (replace, don't append).
    pub full: bool,
    /// New (or all, when `full`) raw entries.
    pub entries: Vec<LogEntry<I, R>>,
    /// Changed (or all) recorded statuses.
    pub statuses: Vec<(ActionId, ActionOutcome)>,
    /// The current checkpoint, included when it changed since `base` (or
    /// on a full transfer).
    pub checkpoint: Option<Checkpoint>,
}

impl<I: Clone, R: Clone> LogDelta<I, R> {
    /// Entry-equivalents shipped: raw entries plus one for a checkpoint.
    pub fn payload_entries(&self) -> u64 {
        self.entries.len() as u64 + u64::from(self.checkpoint.is_some())
    }

    /// Materializes the delta as a standalone log (meaningful for full
    /// transfers and for full-shipping ablations where `base == 0`).
    pub fn to_log(&self) -> ObjectLog<I, R> {
        let mut log = ObjectLog::new();
        if let Some(cp) = &self.checkpoint {
            log.install_checkpoint(cp.clone());
        }
        for e in &self.entries {
            log.insert(e.clone());
        }
        for (a, o) in &self.statuses {
            log.resolve(*a, *o);
        }
        log
    }

    /// Encodes the delta's wire framing (headers, timestamps, action ids,
    /// statuses, checkpoint summary) into a flat byte buffer.
    pub fn encode_wire(&self) -> Vec<u8> {
        encode_delta_wire(
            self.base,
            self.head,
            self.full,
            self.entries.iter(),
            &self.statuses,
            self.checkpoint.as_ref(),
        )
    }
}

/// A borrowed view of [`LogDelta`]: the same reply payload, but with
/// entries and checkpoint borrowed straight out of the serving
/// [`VersionedLog`] instead of cloned. This is the zero-copy half of the
/// reply hot path: a repository can account for (and serialize) a reply
/// without ever cloning entry payloads, materializing an owned
/// [`LogDelta`] at most once — when the reply is actually enqueued.
#[derive(Debug)]
pub struct LogDeltaRef<'a, I, R> {
    /// The frontier this delta starts from.
    pub base: u64,
    /// The repository's log version after these changes.
    pub head: u64,
    /// Whether this is a full transfer.
    pub full: bool,
    /// Borrowed entries (new, or all when `full`).
    pub entries: Vec<&'a LogEntry<I, R>>,
    /// Changed (or all) recorded statuses.
    pub statuses: Vec<(ActionId, ActionOutcome)>,
    /// Borrowed checkpoint, when it changed since `base` (or on full).
    pub checkpoint: Option<&'a Checkpoint>,
}

impl<I: Clone, R: Clone> LogDeltaRef<'_, I, R> {
    /// Entry-equivalents shipped: raw entries plus one for a checkpoint.
    pub fn payload_entries(&self) -> u64 {
        self.entries.len() as u64 + u64::from(self.checkpoint.is_some())
    }

    /// Materializes the owned delta (the single clone on the reply path).
    pub fn to_delta(&self) -> LogDelta<I, R> {
        LogDelta {
            base: self.base,
            head: self.head,
            full: self.full,
            entries: self.entries.iter().map(|e| (*e).clone()).collect(),
            statuses: self.statuses.clone(),
            checkpoint: self.checkpoint.cloned(),
        }
    }

    /// Encodes the wire framing directly from the borrowed entries — no
    /// intermediate owned delta, no entry clones.
    pub fn encode_wire(&self) -> Vec<u8> {
        encode_delta_wire(
            self.base,
            self.head,
            self.full,
            self.entries.iter().copied(),
            &self.statuses,
            self.checkpoint,
        )
    }
}

/// Shared wire framing for owned and borrowed deltas: a fixed header, one
/// fixed-width record per entry (timestamps + action ids), one per status,
/// and the checkpoint summary (horizon + covered set). Byte-identical for
/// a delta and its borrowed view, which the tests assert.
fn encode_delta_wire<'a, I: 'a, R: 'a>(
    base: u64,
    head: u64,
    full: bool,
    entries: impl Iterator<Item = &'a LogEntry<I, R>>,
    statuses: &[(ActionId, ActionOutcome)],
    checkpoint: Option<&Checkpoint>,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&base.to_le_bytes());
    out.extend_from_slice(&head.to_le_bytes());
    out.push(u8::from(full));
    for e in entries {
        out.extend_from_slice(&e.ts.counter.to_le_bytes());
        out.extend_from_slice(&e.ts.node.to_le_bytes());
        out.extend_from_slice(&e.action.0.to_le_bytes());
        out.extend_from_slice(&e.begin_ts.counter.to_le_bytes());
        out.extend_from_slice(&e.begin_ts.node.to_le_bytes());
    }
    for (a, o) in statuses {
        out.extend_from_slice(&a.0.to_le_bytes());
        out.push(match o {
            ActionOutcome::Active => 0,
            ActionOutcome::Committed(_) => 1,
            ActionOutcome::Aborted => 2,
        });
        if let ActionOutcome::Committed(ts) = o {
            out.extend_from_slice(&ts.counter.to_le_bytes());
            out.extend_from_slice(&ts.node.to_le_bytes());
        }
    }
    if let Some(cp) = checkpoint {
        out.extend_from_slice(&cp.horizon.counter.to_le_bytes());
        out.extend_from_slice(&cp.horizon.node.to_le_bytes());
        out.extend_from_slice(&cp.folded.to_le_bytes());
        for (a, ts) in &cp.covered {
            out.extend_from_slice(&a.0.to_le_bytes());
            out.extend_from_slice(&ts.counter.to_le_bytes());
            out.extend_from_slice(&ts.node.to_le_bytes());
        }
    }
    out
}

/// One journaled change to a [`VersionedLog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalItem {
    /// An entry was inserted at this timestamp.
    Entry(Timestamp),
    /// The recorded status of this action changed.
    Status(ActionId),
    /// The checkpoint advanced (fold or adoption).
    Checkpoint,
}

/// Bounded journal length; frontiers older than this fall back to a full
/// transfer.
const JOURNAL_CAP: usize = 1024;

/// An [`ObjectLog`] with a monotonic version counter and a bounded change
/// journal — the repository-side (and mirror-side) machinery behind delta
/// shipping.
///
/// Every mutation that changes the log bumps the version and journals what
/// changed; [`Self::delta_since`] turns a journal suffix into a
/// [`LogDelta`]. A reader holding version `v` that applies the delta for
/// `v` ends bit-identical to this log — [`Self::apply_delta`] is the
/// reader half, a monotone join that tolerates duplicated and reordered
/// replies.
#[derive(Debug, Clone)]
pub struct VersionedLog<I, R> {
    log: ObjectLog<I, R>,
    version: u64,
    journal: VecDeque<(u64, JournalItem)>,
}

impl<I: Clone, R: Clone> Default for VersionedLog<I, R> {
    fn default() -> Self {
        VersionedLog::new()
    }
}

impl<I: Clone, R: Clone> VersionedLog<I, R> {
    /// An empty versioned log.
    pub fn new() -> Self {
        VersionedLog {
            log: ObjectLog::new(),
            version: 0,
            journal: VecDeque::new(),
        }
    }

    /// An empty versioned log with aborted-entry GC switched on.
    pub fn with_gc(gc: bool) -> Self {
        let mut v = VersionedLog::new();
        v.log.set_gc_aborted(gc);
        v
    }

    /// Enables scoped status planting on the underlying log.
    pub fn set_scoped(&mut self, on: bool) {
        self.log.set_scoped(on);
    }

    /// Status GC over the underlying log (see [`ObjectLog::gc_below`]).
    /// A purge is *subtractive*, which deltas cannot express, so any drop
    /// fences every reader into a full transfer: the version advances and
    /// the journal clears, making every outstanding frontier
    /// non-contiguous. That full transfer is what flushes a reader's
    /// stale pre-GC entries (an aborted action's entry with no tombstone
    /// would otherwise linger in a mirror as a phantom lock).
    pub fn gc_below(&mut self, stale: impl Fn(ActionId) -> bool) -> u64 {
        let dropped = self.log.gc_below(stale);
        if dropped > 0 {
            self.version += 1;
            self.journal.clear();
        }
        dropped
    }

    /// The underlying log.
    pub fn log(&self) -> &ObjectLog<I, R> {
        &self.log
    }

    /// The current version (= number of changes ever applied).
    pub fn version(&self) -> u64 {
        self.version
    }

    fn push(&mut self, item: JournalItem) {
        self.version += 1;
        self.journal.push_back((self.version, item));
        if self.journal.len() > JOURNAL_CAP {
            self.journal.pop_front();
        }
    }

    /// Inserts one entry, journaling on change.
    pub fn insert(&mut self, entry: LogEntry<I, R>) -> bool {
        let ts = entry.ts;
        let added = self.log.insert(entry);
        if added {
            self.push(JournalItem::Entry(ts));
        }
        added
    }

    /// Records a resolution, journaling on change.
    pub fn resolve(&mut self, action: ActionId, outcome: ActionOutcome) -> bool {
        let changed = self.log.resolve(action, outcome);
        if changed {
            self.push(JournalItem::Status(action));
        }
        changed
    }

    /// Merges a foreign log, journaling every change.
    pub fn merge(&mut self, other: &ObjectLog<I, R>) -> MergeEffect {
        let effect = self.log.merge(other);
        if effect.checkpoint {
            self.push(JournalItem::Checkpoint);
        }
        for ts in &effect.entries {
            self.push(JournalItem::Entry(*ts));
        }
        for a in &effect.statuses {
            self.push(JournalItem::Status(*a));
        }
        effect
    }

    /// Installs a locally computed (fold) checkpoint, journaling it.
    pub fn install_checkpoint(&mut self, cp: Checkpoint) {
        self.log.install_checkpoint(cp);
        self.push(JournalItem::Checkpoint);
    }

    /// Forces the version counter up to at least `v`, clearing the journal
    /// when it moves (the skipped range has no journaled changes to serve).
    ///
    /// This is the crash-recovery frontier repair: a volatile repository
    /// that restored an older write-ahead mirror must not re-issue version
    /// numbers it already handed out — a reader holding a higher frontier
    /// would be served an empty delta and silently miss everything after
    /// its mirror's state. Advancing past the pre-crash high-water makes
    /// every stale frontier non-contiguous, so [`Self::delta_since`] falls
    /// back to a full transfer instead.
    pub fn advance_version(&mut self, v: u64) {
        if v > self.version {
            self.version = v;
            self.journal.clear();
        }
    }

    /// The changes a reader at version `since` is missing. Falls back to a
    /// full (checkpoint-rooted) transfer when `since` predates the journal.
    pub fn delta_since(&self, since: u64) -> LogDelta<I, R> {
        if since >= self.version {
            return LogDelta {
                base: self.version,
                head: self.version,
                full: false,
                entries: Vec::new(),
                statuses: Vec::new(),
                checkpoint: None,
            };
        }
        let contiguous = self
            .journal
            .front()
            .is_some_and(|(v, _)| *v <= since.saturating_add(1));
        if !contiguous {
            return LogDelta {
                base: 0,
                head: self.version,
                full: true,
                entries: self.log.entries().cloned().collect(),
                statuses: self.log.statuses().collect(),
                checkpoint: self.log.checkpoint().cloned(),
            };
        }
        let mut entry_ts: BTreeSet<Timestamp> = BTreeSet::new();
        let mut actions: BTreeSet<ActionId> = BTreeSet::new();
        let mut saw_checkpoint = false;
        for (v, item) in &self.journal {
            if *v <= since {
                continue;
            }
            match item {
                JournalItem::Entry(ts) => {
                    entry_ts.insert(*ts);
                }
                JournalItem::Status(a) => {
                    actions.insert(*a);
                }
                JournalItem::Checkpoint => saw_checkpoint = true,
            }
        }
        // Entries folded (and statuses pruned) after being journaled are
        // absent from the log now; the checkpoint item journaled by that
        // fold is in the same suffix and carries their summary.
        let entries = entry_ts
            .into_iter()
            .filter_map(|ts| self.log.get(ts).cloned())
            .collect();
        let statuses = actions
            .into_iter()
            .filter_map(|a| self.log.status_entry(a).map(|o| (a, o)))
            .collect();
        LogDelta {
            base: since,
            head: self.version,
            full: false,
            entries,
            statuses,
            checkpoint: if saw_checkpoint {
                self.log.checkpoint().cloned()
            } else {
                None
            },
        }
    }

    /// The borrowed twin of [`Self::delta_since`]: identical selection
    /// logic, but entries and checkpoint are borrowed from this log rather
    /// than cloned. The reply hot path uses this for accounting and wire
    /// encoding, materializing an owned [`LogDelta`] at most once.
    pub fn delta_since_ref(&self, since: u64) -> LogDeltaRef<'_, I, R> {
        if since >= self.version {
            return LogDeltaRef {
                base: self.version,
                head: self.version,
                full: false,
                entries: Vec::new(),
                statuses: Vec::new(),
                checkpoint: None,
            };
        }
        let contiguous = self
            .journal
            .front()
            .is_some_and(|(v, _)| *v <= since.saturating_add(1));
        if !contiguous {
            return LogDeltaRef {
                base: 0,
                head: self.version,
                full: true,
                entries: self.log.entries().collect(),
                statuses: self.log.statuses().collect(),
                checkpoint: self.log.checkpoint(),
            };
        }
        let mut entry_ts: BTreeSet<Timestamp> = BTreeSet::new();
        let mut actions: BTreeSet<ActionId> = BTreeSet::new();
        let mut saw_checkpoint = false;
        for (v, item) in &self.journal {
            if *v <= since {
                continue;
            }
            match item {
                JournalItem::Entry(ts) => {
                    entry_ts.insert(*ts);
                }
                JournalItem::Status(a) => {
                    actions.insert(*a);
                }
                JournalItem::Checkpoint => saw_checkpoint = true,
            }
        }
        let entries = entry_ts
            .into_iter()
            .filter_map(|ts| self.log.get(ts))
            .collect();
        let statuses = actions
            .into_iter()
            .filter_map(|a| self.log.status_entry(a).map(|o| (a, o)))
            .collect();
        LogDeltaRef {
            base: since,
            head: self.version,
            full: false,
            entries,
            statuses,
            checkpoint: if saw_checkpoint {
                self.log.checkpoint()
            } else {
                None
            },
        }
    }

    /// Applies a delta received from a peer serving this log's lineage —
    /// the mirror-side join. Idempotent and order-tolerant: stale deltas
    /// (already-subsumed content) are no-ops. Returns `false` only for a
    /// delta whose base is ahead of this mirror (cannot happen when every
    /// request carried this mirror's own version as `since`).
    pub fn apply_delta(&mut self, delta: &LogDelta<I, R>) -> bool {
        if delta.full {
            if delta.head >= self.version {
                let gc = self.log.gc_aborted();
                let scoped = self.log.scoped();
                let mut log = delta.to_log();
                log.set_gc_aborted(gc);
                log.set_scoped(scoped);
                self.log = log;
                self.version = delta.head;
                self.journal.clear();
            }
            // An older full transfer is wholly subsumed: ignore it.
            return true;
        }
        if delta.base > self.version {
            debug_assert!(
                false,
                "delta base {} ahead of mirror {}",
                delta.base, self.version
            );
            return false;
        }
        if let Some(cp) = &delta.checkpoint {
            self.log.adopt_checkpoint(cp);
        }
        for e in &delta.entries {
            self.log.insert(e.clone());
        }
        for (a, o) in &delta.statuses {
            self.log.resolve(*a, *o);
        }
        self.version = self.version.max(delta.head);
        true
    }
}

/// Builds an entry for spec `S` (helper tying the generic parameters).
pub fn entry_of<S: Sequential>(
    ts: Timestamp,
    action: ActionId,
    begin_ts: Timestamp,
    inv: S::Inv,
    res: S::Res,
) -> LogEntry<S::Inv, S::Res> {
    LogEntry {
        ts,
        action,
        begin_ts,
        event: Event::new(inv, res),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(c: u64, n: u32) -> Timestamp {
        Timestamp {
            counter: c,
            node: n,
        }
    }

    fn entry(c: u64, n: u32, a: u32) -> LogEntry<&'static str, &'static str> {
        LogEntry {
            ts: ts(c, n),
            action: ActionId(a),
            begin_ts: ts(c, n),
            event: Event::new("inv", "res"),
        }
    }

    #[test]
    fn merge_is_idempotent_commutative_union() {
        let mut a = ObjectLog::new();
        a.insert(entry(1, 0, 0));
        a.insert(entry(2, 0, 0));
        let mut b = ObjectLog::new();
        b.insert(entry(2, 0, 0));
        b.insert(entry(3, 1, 1));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.len(), 3);

        let mut aa = ab.clone();
        let effect = aa.merge(&ab);
        assert!(effect.is_empty());
        assert_eq!(aa, ab);
    }

    #[test]
    fn entries_iterate_in_timestamp_order() {
        let mut log = ObjectLog::new();
        log.insert(entry(3, 0, 0));
        log.insert(entry(1, 1, 1));
        log.insert(entry(1, 0, 2));
        let order: Vec<Timestamp> = log.entries().map(|e| e.ts).collect();
        assert_eq!(order, vec![ts(1, 0), ts(1, 1), ts(3, 0)]);
    }

    #[test]
    fn status_upgrades_but_never_downgrades() {
        let mut log: ObjectLog<&str, &str> = ObjectLog::new();
        assert_eq!(log.status(ActionId(0)), ActionOutcome::Active);
        assert!(log.resolve(ActionId(0), ActionOutcome::Committed(ts(5, 1))));
        assert!(!log.resolve(ActionId(0), ActionOutcome::Active));
        assert_eq!(log.status(ActionId(0)), ActionOutcome::Committed(ts(5, 1)));
    }

    #[test]
    fn statuses_gossip_through_merge() {
        let mut a: ObjectLog<&str, &str> = ObjectLog::new();
        let mut b: ObjectLog<&str, &str> = ObjectLog::new();
        b.resolve(ActionId(2), ActionOutcome::Aborted);
        a.merge(&b);
        assert_eq!(a.status(ActionId(2)), ActionOutcome::Aborted);
    }

    #[test]
    fn outcome_merge_table() {
        let c = ActionOutcome::Committed(ts(1, 0));
        assert_eq!(ActionOutcome::Active.merge(c), c);
        assert_eq!(c.merge(ActionOutcome::Active), c);
        assert_eq!(
            ActionOutcome::Aborted.merge(ActionOutcome::Aborted),
            ActionOutcome::Aborted
        );
        assert!(c.is_resolved());
        assert!(!ActionOutcome::Active.is_resolved());
    }

    #[test]
    fn gc_drops_aborted_entries_and_blocks_reinsertion() {
        let mut log = ObjectLog::new();
        log.set_gc_aborted(true);
        log.insert(entry(1, 0, 7));
        log.insert(entry(2, 0, 8));
        assert!(log.resolve(ActionId(7), ActionOutcome::Aborted));
        assert_eq!(log.len(), 1, "aborted entries dropped");
        // Re-insertion via merge is refused; the tombstone survives.
        assert!(!log.insert(entry(1, 0, 7)));
        assert_eq!(log.status(ActionId(7)), ActionOutcome::Aborted);
    }

    #[test]
    fn scoped_resolve_refuses_untouched_actions() {
        let mut log = ObjectLog::new();
        log.set_scoped(true);
        log.insert(entry(1, 0, 7));
        // Touched action: status lands.
        assert!(log.resolve(ActionId(7), ActionOutcome::Committed(ts(9, 0))));
        // Untouched action: status is irrelevant here and refused.
        assert!(!log.resolve(ActionId(8), ActionOutcome::Aborted));
        assert_eq!(log.status(ActionId(8)), ActionOutcome::Active);
        assert_eq!(log.status_count(), 1);
    }

    #[test]
    fn scoped_tombstone_still_lands_after_aborted_entry_gc() {
        let mut log = ObjectLog::new();
        log.set_scoped(true);
        log.set_gc_aborted(true);
        log.insert(entry(1, 0, 7));
        assert!(log.resolve(ActionId(7), ActionOutcome::Aborted));
        assert_eq!(log.len(), 0, "aborted entry dropped");
        // The action stays in scope: a re-delivered entry is refused and
        // the tombstone remains shippable.
        assert!(log.is_touched(ActionId(7)));
        assert!(!log.insert(entry(1, 0, 7)));
        assert_eq!(log.status(ActionId(7)), ActionOutcome::Aborted);
    }

    #[test]
    fn gc_below_drops_durable_tombstones_but_keeps_live_commits() {
        let mut log = ObjectLog::new();
        log.insert(entry(1, 0, 1)); // committed, entry-bearing
        log.insert(entry(2, 0, 2)); // aborted
        log.resolve(ActionId(1), ActionOutcome::Committed(ts(9, 0)));
        log.resolve(ActionId(2), ActionOutcome::Aborted);
        log.resolve(ActionId(3), ActionOutcome::Committed(ts(10, 0))); // no entries
        let dropped = log.gc_below(|_| true);
        assert_eq!(dropped, 2, "tombstone + entry-less commit dropped");
        // Entry-bearing commit status survives (readers still need it).
        assert_eq!(log.status(ActionId(1)), ActionOutcome::Committed(ts(9, 0)));
        // Aborted entries go with their tombstone.
        assert_eq!(log.len(), 1);
        assert!(!log.is_touched(ActionId(2)));
    }

    #[test]
    fn versioned_gc_fences_readers_into_a_full_transfer() {
        let mut repo: VersionedLog<&str, &str> = VersionedLog::new();
        let mut mirror: VersionedLog<&str, &str> = VersionedLog::new();
        repo.insert(entry(1, 0, 1));
        repo.insert(entry(2, 0, 2));
        mirror.apply_delta(&repo.delta_since(0));
        assert_eq!(mirror.log(), repo.log());
        // The repo resolves action 2 aborted and GCs the tombstone; the
        // mirror still holds the entry with no status (a phantom lock).
        repo.resolve(ActionId(2), ActionOutcome::Aborted);
        assert_eq!(repo.gc_below(|a| a == ActionId(2)), 1);
        let d = repo.delta_since(mirror.version());
        assert!(d.full, "GC fences the reader into a full transfer");
        mirror.apply_delta(&d);
        assert_eq!(mirror.log(), repo.log());
        assert_eq!(mirror.log().len(), 1, "stale aborted entry flushed");
        // A no-op GC does not fence.
        let v = repo.version();
        assert_eq!(repo.gc_below(|_| true), 0);
        assert_eq!(repo.version(), v);
    }

    fn checkpoint_over(pairs: &[(u32, u64)], folded: u64) -> Checkpoint {
        let covered: BTreeMap<ActionId, Timestamp> = pairs
            .iter()
            .map(|(a, c)| (ActionId(*a), ts(*c, 0)))
            .collect();
        Checkpoint::new((), covered, folded)
    }

    #[test]
    fn checkpoint_covers_statuses_and_refuses_covered_entries() {
        let mut log = ObjectLog::new();
        log.insert(entry(1, 0, 1));
        log.insert(entry(2, 0, 2));
        log.resolve(ActionId(1), ActionOutcome::Committed(ts(10, 0)));
        log.install_checkpoint(checkpoint_over(&[(1, 10)], 1));
        assert_eq!(log.len(), 1, "covered entry dropped");
        assert_eq!(log.status(ActionId(1)), ActionOutcome::Committed(ts(10, 0)));
        assert!(log.status_entry(ActionId(1)).is_none(), "status pruned");
        assert!(!log.insert(entry(1, 0, 1)), "covered entry refused");
        let resolved: Vec<ActionId> = log.resolved_actions().collect();
        assert!(resolved.contains(&ActionId(1)));
    }

    #[test]
    fn checkpoint_adoption_requires_a_superset() {
        let mut log: ObjectLog<&str, &str> = ObjectLog::new();
        assert!(log.adopt_checkpoint(&checkpoint_over(&[(1, 10)], 1)));
        // A divergent checkpoint (misses action 1) is refused even though
        // its horizon is larger.
        assert!(!log.adopt_checkpoint(&checkpoint_over(&[(2, 20)], 1)));
        // A strict extension is adopted.
        assert!(log.adopt_checkpoint(&checkpoint_over(&[(1, 10), (2, 20)], 2)));
        assert_eq!(log.checkpoint().unwrap().horizon(), ts(20, 0));
        // Re-adopting the same checkpoint is a no-op.
        assert!(!log.adopt_checkpoint(&checkpoint_over(&[(1, 10), (2, 20)], 2)));
    }

    #[test]
    fn delta_roundtrip_keeps_mirror_identical() {
        let mut repo: VersionedLog<&str, &str> = VersionedLog::new();
        let mut mirror: VersionedLog<&str, &str> = VersionedLog::new();
        repo.insert(entry(1, 0, 1));
        repo.insert(entry(2, 0, 2));
        let d1 = repo.delta_since(mirror.version());
        assert_eq!(d1.entries.len(), 2);
        assert!(mirror.apply_delta(&d1));
        assert_eq!(mirror.log(), repo.log());
        assert_eq!(mirror.version(), repo.version());

        repo.insert(entry(3, 1, 3));
        repo.resolve(ActionId(1), ActionOutcome::Committed(ts(9, 0)));
        let d2 = repo.delta_since(mirror.version());
        assert_eq!(d2.entries.len(), 1, "only the suffix ships");
        assert_eq!(d2.statuses.len(), 1);
        mirror.apply_delta(&d2);
        assert_eq!(mirror.log(), repo.log());

        // Re-applying old deltas is a no-op (idempotent join).
        mirror.apply_delta(&d1);
        mirror.apply_delta(&d2);
        assert_eq!(mirror.log(), repo.log());

        // An empty delta for an up-to-date mirror.
        let d3 = repo.delta_since(mirror.version());
        assert_eq!(d3.payload_entries(), 0);
        assert!(!d3.full);
    }

    #[test]
    fn delta_crosses_a_fold_via_the_checkpoint() {
        let mut repo: VersionedLog<&str, &str> = VersionedLog::new();
        let mut mirror: VersionedLog<&str, &str> = VersionedLog::new();
        repo.insert(entry(1, 0, 1));
        mirror.apply_delta(&repo.delta_since(0));
        // The repo resolves and folds action 1 while the mirror is away.
        repo.resolve(ActionId(1), ActionOutcome::Committed(ts(10, 0)));
        repo.install_checkpoint(checkpoint_over(&[(1, 10)], 1));
        repo.insert(entry(20, 0, 2));
        let d = repo.delta_since(mirror.version());
        assert!(d.checkpoint.is_some(), "fold ships the checkpoint");
        mirror.apply_delta(&d);
        assert_eq!(mirror.log(), repo.log());
        assert_eq!(mirror.log().len(), 1);
        assert_eq!(
            mirror.log().status(ActionId(1)),
            ActionOutcome::Committed(ts(10, 0))
        );
    }

    #[test]
    fn ancient_frontier_falls_back_to_full_transfer() {
        let mut repo: VersionedLog<&str, &str> = VersionedLog::new();
        for i in 0..(JOURNAL_CAP as u64 + 8) {
            repo.insert(entry(i + 1, 0, i as u32));
        }
        let d = repo.delta_since(1);
        assert!(d.full, "journal trimmed: full transfer");
        let mut mirror: VersionedLog<&str, &str> = VersionedLog::new();
        mirror.apply_delta(&repo.delta_since(0)); // also full? no: version 0 predates journal front only if trimmed
        let mut fresh: VersionedLog<&str, &str> = VersionedLog::new();
        fresh.apply_delta(&d);
        assert_eq!(fresh.log(), repo.log());
        assert_eq!(fresh.version(), repo.version());
    }

    /// The zero-copy reply path must be indistinguishable from the owned
    /// one: same framing bytes, same payload accounting, and the
    /// materialized `to_delta` round-trips to identical wire bytes — at
    /// every frontier, including the full-transfer fallback past the
    /// journal horizon.
    #[test]
    fn delta_since_ref_is_byte_identical_to_the_owned_delta() {
        let mut repo: VersionedLog<&str, &str> = VersionedLog::new();
        for i in 0..20u64 {
            repo.insert(entry(i + 1, 0, i as u32));
        }
        for i in 0..10u32 {
            repo.resolve(
                ActionId(i),
                ActionOutcome::Committed(ts(u64::from(i) + 30, 0)),
            );
        }
        repo.install_checkpoint(checkpoint_over(&[(0, 30)], 1));
        for since in [0, 1, 5, repo.version().saturating_sub(3), repo.version()] {
            let owned = repo.delta_since(since);
            let borrowed = repo.delta_since_ref(since);
            assert_eq!(owned.full, borrowed.full, "since {since}");
            assert_eq!(
                owned.payload_entries(),
                borrowed.payload_entries(),
                "since {since}"
            );
            assert_eq!(owned.encode_wire(), borrowed.encode_wire(), "since {since}");
            assert_eq!(
                borrowed.to_delta().encode_wire(),
                owned.encode_wire(),
                "since {since}: to_delta drifted"
            );
        }

        // Past the journal horizon both paths fall back to a full
        // transfer, still byte-equal.
        let mut big: VersionedLog<&str, &str> = VersionedLog::new();
        for i in 0..(JOURNAL_CAP as u64 + 8) {
            big.insert(entry(i + 1, 0, i as u32));
        }
        let owned = big.delta_since(1);
        let borrowed = big.delta_since_ref(1);
        assert!(owned.full && borrowed.full);
        assert_eq!(owned.encode_wire(), borrowed.encode_wire());
    }
}
