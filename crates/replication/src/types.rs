//! Log entries and merge rules — the replicated object's state
//! representation (§3.2: "a replicated object's state is represented as a
//! log … partially replicated among the repositories").

use quorumcc_model::{ActionId, Event, Sequential};
use quorumcc_sim::Timestamp;
use std::collections::BTreeMap;

/// Identifier of a replicated object within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId(pub u16);

impl std::fmt::Display for ObjId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// The resolution of an action, as known by a repository.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionOutcome {
    /// Still running; its entries are tentative (they act as locks).
    Active,
    /// Committed with the given commit timestamp (hybrid serialization
    /// position).
    Committed(Timestamp),
    /// Aborted; its entries are garbage.
    Aborted,
}

impl ActionOutcome {
    /// Merge precedence: resolutions beat `Active`; resolutions are final.
    pub fn merge(self, other: ActionOutcome) -> ActionOutcome {
        match (self, other) {
            (ActionOutcome::Active, o) => o,
            (s, ActionOutcome::Active) => s,
            (s, o) => {
                debug_assert_eq!(s, o, "conflicting resolutions for one action");
                s
            }
        }
    }

    /// Whether this outcome is a final resolution.
    pub fn is_resolved(self) -> bool {
        !matches!(self, ActionOutcome::Active)
    }
}

/// One timestamped event record (§3.2: "a sequence of entries, each
/// consisting of a timestamp, an event, and an action identifier").
///
/// `begin_ts` carries the action's Begin timestamp so the static protocol
/// can serialize by Begin order without extra lookups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry<I, R> {
    /// Unique entry timestamp (Lamport: simulated time + issuing process).
    pub ts: Timestamp,
    /// The executing action.
    pub action: ActionId,
    /// The action's Begin timestamp.
    pub begin_ts: Timestamp,
    /// The recorded event.
    pub event: Event<I, R>,
}

/// A per-object log plus the action resolutions it has heard of.
///
/// Merging is a CRDT-style join: entries union by unique timestamp,
/// statuses upgrade `Active → Committed/Aborted`. Front-ends write back
/// whole merged views, so information (including commit resolutions)
/// propagates transitively through quorum intersections — this is what
/// makes indirect dependencies (e.g. a PROM `Read` learning of `Write`s
/// through the `Seal` entry) work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectLog<I, R> {
    entries: BTreeMap<Timestamp, LogEntry<I, R>>,
    statuses: BTreeMap<ActionId, ActionOutcome>,
}

impl<I: Clone, R: Clone> Default for ObjectLog<I, R> {
    fn default() -> Self {
        ObjectLog::new()
    }
}

impl<I: Clone, R: Clone> ObjectLog<I, R> {
    /// An empty log.
    pub fn new() -> Self {
        ObjectLog {
            entries: BTreeMap::new(),
            statuses: BTreeMap::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds one entry (idempotent — timestamps are unique).
    pub fn insert(&mut self, entry: LogEntry<I, R>) {
        self.entries.entry(entry.ts).or_insert(entry);
    }

    /// Records an action resolution (upgrades, never downgrades).
    pub fn resolve(&mut self, action: ActionId, outcome: ActionOutcome) {
        let cur = self
            .statuses
            .get(&action)
            .copied()
            .unwrap_or(ActionOutcome::Active);
        self.statuses.insert(action, cur.merge(outcome));
    }

    /// The outcome of `action` as known here.
    pub fn status(&self, action: ActionId) -> ActionOutcome {
        self.statuses
            .get(&action)
            .copied()
            .unwrap_or(ActionOutcome::Active)
    }

    /// Merges another log into this one (entry union + status upgrade).
    pub fn merge(&mut self, other: &ObjectLog<I, R>) {
        for e in other.entries.values() {
            self.insert(e.clone());
        }
        for (a, o) in &other.statuses {
            self.resolve(*a, *o);
        }
    }

    /// Entries in timestamp order.
    pub fn entries(&self) -> impl Iterator<Item = &LogEntry<I, R>> {
        self.entries.values()
    }

    /// Known statuses.
    pub fn statuses(&self) -> impl Iterator<Item = (ActionId, ActionOutcome)> + '_ {
        self.statuses.iter().map(|(a, o)| (*a, *o))
    }
}

/// Builds an entry for spec `S` (helper tying the generic parameters).
pub fn entry_of<S: Sequential>(
    ts: Timestamp,
    action: ActionId,
    begin_ts: Timestamp,
    inv: S::Inv,
    res: S::Res,
) -> LogEntry<S::Inv, S::Res> {
    LogEntry {
        ts,
        action,
        begin_ts,
        event: Event::new(inv, res),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(c: u64, n: u32) -> Timestamp {
        Timestamp {
            counter: c,
            node: n,
        }
    }

    fn entry(c: u64, n: u32, a: u32) -> LogEntry<&'static str, &'static str> {
        LogEntry {
            ts: ts(c, n),
            action: ActionId(a),
            begin_ts: ts(c, n),
            event: Event::new("inv", "res"),
        }
    }

    #[test]
    fn merge_is_idempotent_commutative_union() {
        let mut a = ObjectLog::new();
        a.insert(entry(1, 0, 0));
        a.insert(entry(2, 0, 0));
        let mut b = ObjectLog::new();
        b.insert(entry(2, 0, 0));
        b.insert(entry(3, 1, 1));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.len(), 3);

        let mut aa = ab.clone();
        aa.merge(&ab);
        assert_eq!(aa, ab);
    }

    #[test]
    fn entries_iterate_in_timestamp_order() {
        let mut log = ObjectLog::new();
        log.insert(entry(3, 0, 0));
        log.insert(entry(1, 1, 1));
        log.insert(entry(1, 0, 2));
        let order: Vec<Timestamp> = log.entries().map(|e| e.ts).collect();
        assert_eq!(order, vec![ts(1, 0), ts(1, 1), ts(3, 0)]);
    }

    #[test]
    fn status_upgrades_but_never_downgrades() {
        let mut log: ObjectLog<&str, &str> = ObjectLog::new();
        assert_eq!(log.status(ActionId(0)), ActionOutcome::Active);
        log.resolve(ActionId(0), ActionOutcome::Committed(ts(5, 1)));
        log.resolve(ActionId(0), ActionOutcome::Active);
        assert_eq!(log.status(ActionId(0)), ActionOutcome::Committed(ts(5, 1)));
    }

    #[test]
    fn statuses_gossip_through_merge() {
        let mut a: ObjectLog<&str, &str> = ObjectLog::new();
        let mut b: ObjectLog<&str, &str> = ObjectLog::new();
        b.resolve(ActionId(2), ActionOutcome::Aborted);
        a.merge(&b);
        assert_eq!(a.status(ActionId(2)), ActionOutcome::Aborted);
    }

    #[test]
    fn outcome_merge_table() {
        let c = ActionOutcome::Committed(ts(1, 0));
        assert_eq!(ActionOutcome::Active.merge(c), c);
        assert_eq!(c.merge(ActionOutcome::Active), c);
        assert_eq!(
            ActionOutcome::Aborted.merge(ActionOutcome::Aborted),
            ActionOutcome::Aborted
        );
        assert!(c.is_resolved());
        assert!(!ActionOutcome::Active.is_resolved());
    }
}
