//! The replication layer plugged into the interleaving explorer
//! ([`quorumcc_sim::explore`]): small cluster shapes, the safety oracle
//! auditing every branch, and one-line witness specs that replay exactly.
//!
//! The chaos fuzzer ([`crate::chaos`]) *samples* fault plans — it can find
//! bugs but never prove their absence. The explorer enumerates **every**
//! delivery interleaving of a small shape (2–3 sites, 1–2 clients, short
//! transactions) and runs the oracle on each branch, turning "600 plans
//! ran clean" into "every reachable schedule of this shape is safe". The
//! two planted-bug knobs ([`crate::cluster::TuningConfig`]'s
//! `unsound_weaken_read_quorum` and `unsound_skip_final_ack`) are the
//! calibration: exploration must find both, at minimal depth.
//!
//! # What the hooks claim
//!
//! * **Independence** (for partial-order reduction): repository-bound
//!   `ReadLog`/`WriteLog` messages commute when they target different
//!   objects, and `ReadLog`s commute even on the same object (reads
//!   record per-action reservations and never mutate the log). Repository
//!   message handlers are RNG-free, so same-site commutation is sound.
//!   Everything else — client-bound replies, `Resolve`, batches — is
//!   treated as dependent.
//! * **Auditing**: the lost-write, monotonicity, and checkpoint-nesting
//!   families run at every commit (a sound protocol commits only after a
//!   final quorum acked, so the entries must already be present); the
//!   serializability family runs only once every transaction has decided,
//!   because a committed read of a still-pending write is not yet a
//!   violation.
//!
//! # Quorum arithmetic caveat
//!
//! The weakened-read-quorum bug is *unobservable at two sites*: with
//! `n = 2`, weakening the initial threshold from 2 to 1 still leaves
//! `ti + tf = 1 + 2 = 3 > n`, so every view intersects every final
//! quorum and the protocol stays correct by accident. Its minimal
//! violating shape is three sites (1 + 2 = 3 = n — no intersection),
//! which is what the planted-bug gates use. The skip-final-ack bug needs
//! no such arithmetic — committing ahead of unacknowledged writes is
//! already a lost write at two sites, a handful of events deep.

use crate::client::Transaction;
use crate::cluster::{Node, ProtocolConfig, RunBuilder, TuningConfig};
use crate::driver::DesAdapter;
use crate::error::ReplicationError;
use crate::messages::Msg;
use crate::protocol::Protocol;
use crate::spec;
use crate::types::ObjId;
use crate::workload::{generate, WorkloadSpec};
use quorumcc_model::spec::ExploreBounds;
use quorumcc_model::{Classified, Enumerable};
use quorumcc_sim::explore::{explore, replay, ExploreConfig, ExploreHooks, ExploreOutcome};
use quorumcc_sim::{ProcId, SimStats};
use rand::Rng;
use std::fmt;

/// Which planted bug (if any) the explored cluster runs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Knob {
    /// The sound protocol.
    #[default]
    None,
    /// Initial quorums weakened by one site
    /// ([`TuningConfig::unsound_weaken_read_quorum`]).
    WeakenReadQuorum,
    /// Commits race unacknowledged final-quorum writes
    /// ([`TuningConfig::unsound_skip_final_ack`]).
    SkipFinalAck,
}

impl Knob {
    /// The spec-field rendering.
    pub fn name(self) -> &'static str {
        match self {
            Knob::None => "none",
            Knob::WeakenReadQuorum => "weaken",
            Knob::SkipFinalAck => "skipack",
        }
    }

    /// Parses the spec-field rendering.
    ///
    /// # Errors
    ///
    /// A description of the unknown knob name.
    pub fn parse(s: &str) -> Result<Knob, String> {
        match s {
            "none" => Ok(Knob::None),
            "weaken" => Ok(Knob::WeakenReadQuorum),
            "skipack" => Ok(Knob::SkipFinalAck),
            other => Err(format!("bad knob: {other:?} (want none|weaken|skipack)")),
        }
    }
}

/// The workload shape one exploration covers: everything needed to
/// regenerate the exact cluster, deterministic in `seed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreSetup {
    /// Repositories.
    pub sites: u32,
    /// Clients.
    pub clients: usize,
    /// Transactions per client.
    pub txns_per_client: usize,
    /// Operations per transaction.
    pub ops_per_txn: usize,
    /// Objects the workload spreads over.
    pub objects: u16,
    /// Workload + per-event randomness seed.
    pub seed: u64,
    /// Narrow (minimal-quorum) fan-out instead of broadcast. Fewer
    /// in-flight messages per op — the exhaustively explorable shapes
    /// get noticeably bigger under it.
    pub narrow: bool,
    /// The planted bug, if any.
    pub knob: Knob,
    /// Serializability-search bounds for the oracle.
    pub bounds: ExploreBounds,
}

impl Default for ExploreSetup {
    fn default() -> Self {
        ExploreSetup {
            sites: 2,
            clients: 1,
            txns_per_client: 1,
            ops_per_txn: 1,
            objects: 1,
            seed: 0,
            narrow: false,
            knob: Knob::None,
            bounds: ExploreBounds {
                depth: 4,
                ..ExploreBounds::default()
            },
        }
    }
}

/// A one-line replayable witness spec, sharing the `key=value;` codec
/// with [`crate::chaos::ChaosPlan`]:
///
/// ```text
/// mode=hybrid;sites=3;clients=2;txns=1;ops=1;objects=1;seed=5;depth=24;por=1;knob=weaken;sched=0.1.4.2
/// ```
///
/// `sched` is the witness schedule — indices into each prefix state's
/// canonical enabled-choice list, which is independent of whether
/// partial-order reduction was on when the witness was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreSpec {
    /// Protocol mode name (resolved back to a protocol by the CLI).
    pub mode: String,
    /// The explored shape.
    pub setup: ExploreSetup,
    /// Depth limit the exploration ran with.
    pub depth: usize,
    /// Whether partial-order reduction was on (informational; replay is
    /// identical either way).
    pub por: bool,
    /// The schedule to replay.
    pub sched: Vec<u32>,
}

impl fmt::Display for ExploreSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sched: Vec<String> = self.sched.iter().map(u32::to_string).collect();
        write!(
            f,
            "mode={};sites={};clients={};txns={};ops={};objects={};seed={};depth={};por={}",
            self.mode,
            self.setup.sites,
            self.setup.clients,
            self.setup.txns_per_client,
            self.setup.ops_per_txn,
            self.setup.objects,
            self.setup.seed,
            self.depth,
            u8::from(self.por),
        )?;
        // Broadcast fan-out is the default; like the chaos codec's
        // `shards`/`batch`, the field appears only when it deviates, so
        // pre-existing specs stay byte-identical.
        if self.setup.narrow {
            write!(f, ";fan=n")?;
        }
        write!(
            f,
            ";knob={};sched={}",
            self.setup.knob.name(),
            sched.join(".")
        )
    }
}

impl ExploreSpec {
    /// Parses a spec produced by [`ExploreSpec`]'s `Display`.
    ///
    /// # Errors
    ///
    /// A description of the first malformed field.
    pub fn parse(s: &str) -> Result<ExploreSpec, String> {
        let mut out = ExploreSpec {
            mode: String::new(),
            setup: ExploreSetup::default(),
            depth: 0,
            por: true,
            sched: Vec::new(),
        };
        for (key, value) in spec::fields(s)? {
            match key {
                "mode" => out.mode = value.to_string(),
                "sites" => out.setup.sites = spec::num(value, "sites")?,
                "clients" => out.setup.clients = spec::num(value, "clients")?,
                "txns" => out.setup.txns_per_client = spec::num(value, "txns")?,
                "ops" => out.setup.ops_per_txn = spec::num(value, "ops")?,
                "objects" => out.setup.objects = spec::num(value, "objects")?,
                "seed" => out.setup.seed = spec::num(value, "seed")?,
                "depth" => out.depth = spec::num(value, "depth")?,
                "por" => out.por = spec::num::<u8>(value, "por")? != 0,
                "fan" => {
                    out.setup.narrow = match value {
                        "n" => true,
                        "b" => false,
                        other => return Err(format!("bad fan: {other:?}")),
                    }
                }
                "knob" => out.setup.knob = Knob::parse(value)?,
                "sched" => {
                    out.sched = value
                        .split('.')
                        .filter(|p| !p.is_empty())
                        .map(|p| spec::num(p, "sched"))
                        .collect::<Result<_, _>>()?;
                }
                other => return Err(format!("unknown field: {other:?}")),
            }
        }
        if out.mode.is_empty() {
            return Err("missing mode".to_string());
        }
        Ok(out)
    }
}

/// What a spec replay produces: the rendered steps (deterministic, used
/// by the byte-identity tests) and the oracle verdict on the replayed
/// branch.
#[derive(Debug, Clone)]
pub struct ExploreReplay {
    /// One line per executed step.
    pub steps: Vec<String>,
    /// The violation the branch reproduces (`None` = clean).
    pub verdict: Option<String>,
}

/// The safety-oracle hooks over a cluster's drivers.
struct Hooks<S: Classified + Enumerable + Clone + fmt::Debug> {
    builder: RunBuilder<S>,
    protocol: Protocol,
    total_txns: u64,
    bounds: ExploreBounds,
}

impl<S: Classified + Enumerable + Clone + fmt::Debug> Hooks<S> {
    fn clients<'a>(&self, procs: &'a [DesAdapter<Node<S>>]) -> Vec<&'a crate::client::Client<S>> {
        let (r, c) = (
            self.builder.n_repos() as usize,
            self.builder.n_clients() as usize,
        );
        procs[r..r + c]
            .iter()
            .map(|p| match p.driver() {
                Node::Client(c) => c,
                _ => unreachable!("client id range"),
            })
            .collect()
    }
}

impl<S: Classified + Enumerable + Clone + fmt::Debug>
    ExploreHooks<Msg<S::Inv, S::Res>, DesAdapter<Node<S>>> for Hooks<S>
{
    fn decided(&self, procs: &[DesAdapter<Node<S>>]) -> u64 {
        self.clients(procs)
            .iter()
            .map(|c| {
                let s = c.stats();
                (s.committed + s.aborted_conflict + s.aborted_unavailable) as u64
            })
            .sum()
    }

    fn check(&self, procs: &[DesAdapter<Node<S>>]) -> Option<String> {
        let refs: Vec<&Node<S>> = procs.iter().map(DesAdapter::driver).collect();
        let report = self.builder.harvest(
            self.protocol.clone(),
            &refs,
            false,
            SimStats::default(),
            None,
        );
        let full = self.decided(procs) >= self.total_txns;
        let safety = report.safety_gated(self.bounds, full);
        safety.violations().first().map(ToString::to_string)
    }

    fn independent(&self, a: &Msg<S::Inv, S::Res>, b: &Msg<S::Inv, S::Res>) -> bool {
        fn data<I, R>(m: &Msg<I, R>) -> Option<(ObjId, bool)> {
            match m {
                Msg::ReadLog { obj, .. } => Some((*obj, true)),
                Msg::WriteLog { obj, .. } => Some((*obj, false)),
                _ => None,
            }
        }
        match (data(a), data(b)) {
            // Repository data traffic: different objects always commute;
            // two reads commute even on the same object.
            (Some((oa, ra)), Some((ob, rb))) => oa != ob || (ra && rb),
            _ => false,
        }
    }

    fn done(&self, procs: &[DesAdapter<Node<S>>]) -> bool {
        self.clients(procs).iter().all(|c| c.is_done())
    }

    fn can_crash(&self, p: ProcId) -> bool {
        p < self.builder.n_repos()
    }
}

/// Builds the cluster for a shape: the same [`RunBuilder`] validation and
/// node construction a DES run uses, handed to the explorer instead of
/// the engine.
#[allow(clippy::type_complexity)]
fn build_cluster<S: Classified + Enumerable + Clone + fmt::Debug>(
    protocol: &Protocol,
    setup: &ExploreSetup,
    workload: Vec<Vec<Transaction<S::Inv>>>,
) -> Result<(Hooks<S>, Vec<DesAdapter<Node<S>>>), ReplicationError> {
    let mut tuning = TuningConfig::default();
    if setup.narrow {
        tuning = tuning.fanout(crate::client::Fanout::Narrow);
    }
    match setup.knob {
        Knob::None => {}
        Knob::WeakenReadQuorum => tuning = tuning.unsound_weaken_read_quorum(),
        Knob::SkipFinalAck => tuning = tuning.unsound_skip_final_ack(),
    }
    let total_txns = workload.iter().map(|t| t.len() as u64).sum();
    let builder = RunBuilder::<S>::new(setup.sites)
        .protocol(ProtocolConfig::new(protocol.clone()))
        .tuning(tuning)
        .seed(setup.seed)
        .workload(workload);
    let (builder, cc, thresholds) = builder.validated()?;
    let (nodes, _has_reconfigurer) = builder.build_nodes(&cc, &thresholds);
    let procs = nodes.into_iter().map(DesAdapter::new).collect();
    Ok((
        Hooks {
            builder,
            protocol: cc.protocol,
            total_txns,
            bounds: setup.bounds,
        },
        procs,
    ))
}

fn seeded_workload<S: Classified + Enumerable + Clone + fmt::Debug>(
    setup: &ExploreSetup,
) -> Vec<Vec<Transaction<S::Inv>>> {
    let alphabet = S::invocations();
    generate(
        WorkloadSpec {
            clients: setup.clients,
            txns_per_client: setup.txns_per_client,
            ops_per_txn: setup.ops_per_txn,
            objects: setup.objects,
            seed: setup.seed,
        },
        |rng| alphabet[rng.gen_range(0..alphabet.len())].clone(),
    )
}

/// Explores every interleaving of the seeded shape.
///
/// # Errors
///
/// The builder's validation errors (invalid thresholds or empty shapes).
pub fn explore_setup<S: Classified + Enumerable + Clone + fmt::Debug>(
    protocol: &Protocol,
    setup: &ExploreSetup,
    cfg: ExploreConfig,
) -> Result<ExploreOutcome, ReplicationError> {
    explore_workload::<S>(protocol, setup, seeded_workload::<S>(setup), cfg)
}

/// Explores every interleaving of a hand-written workload under the
/// shape's knob and bounds (`setup`'s workload-shape fields are ignored;
/// the tests use this to plant exact conflict patterns).
///
/// # Errors
///
/// The builder's validation errors.
pub fn explore_workload<S: Classified + Enumerable + Clone + fmt::Debug>(
    protocol: &Protocol,
    setup: &ExploreSetup,
    workload: Vec<Vec<Transaction<S::Inv>>>,
    cfg: ExploreConfig,
) -> Result<ExploreOutcome, ReplicationError> {
    let (hooks, procs) = build_cluster::<S>(protocol, setup, workload)?;
    let cfg = ExploreConfig {
        seed: setup.seed,
        ..cfg
    };
    Ok(explore(procs, &hooks, cfg))
}

/// Replays a witness schedule against the seeded shape, step for step.
///
/// # Errors
///
/// The builder's validation errors.
pub fn replay_setup<S: Classified + Enumerable + Clone + fmt::Debug>(
    protocol: &Protocol,
    setup: &ExploreSetup,
    schedule: &[u32],
) -> Result<ExploreReplay, ReplicationError> {
    replay_workload::<S>(protocol, setup, seeded_workload::<S>(setup), schedule)
}

/// Replays a witness schedule against a hand-written workload.
///
/// # Errors
///
/// The builder's validation errors.
pub fn replay_workload<S: Classified + Enumerable + Clone + fmt::Debug>(
    protocol: &Protocol,
    setup: &ExploreSetup,
    workload: Vec<Vec<Transaction<S::Inv>>>,
    schedule: &[u32],
) -> Result<ExploreReplay, ReplicationError> {
    let (hooks, procs) = build_cluster::<S>(protocol, setup, workload)?;
    let cfg = ExploreConfig {
        seed: setup.seed,
        ..ExploreConfig::default()
    };
    let r = replay(procs, &hooks, cfg, schedule);
    Ok(ExploreReplay {
        steps: r.steps,
        verdict: r.verdict,
    })
}
