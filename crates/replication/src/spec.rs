//! The shared one-line `key=value;…` replay-spec codec.
//!
//! Both replay surfaces — the chaos shrinker's fault plans
//! ([`crate::chaos::ChaosPlan`]) and the interleaving explorer's
//! witnesses ([`crate::explore::ExploreSpec`]) — serialize to this shape,
//! so a spec printed by one failure report pastes into the matching
//! `--replay` flag without translation. The helpers here are the codec's
//! common substrate: field splitting and typed scalar parsing with
//! uniform error messages.

/// Parses one scalar field, naming the field in the error.
pub(crate) fn num<T: std::str::FromStr>(v: &str, what: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("bad {what}: {v:?}"))
}

/// Splits a spec into `(key, value)` fields, rejecting anything that is
/// not `key=value`. Empty fields (doubled or trailing `;`) are skipped.
pub(crate) fn fields(spec: &str) -> Result<Vec<(&str, &str)>, String> {
    spec.split(';')
        .filter(|f| !f.is_empty())
        .map(|field| {
            field
                .split_once('=')
                .ok_or_else(|| format!("bad field: {field:?} (want key=value)"))
        })
        .collect()
}
