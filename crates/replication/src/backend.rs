//! Execution backends for the sans-I/O cluster.
//!
//! The protocol core ([`Driver`] implementations in
//! `client`, `repository`, and `reconfig`) never touches a clock, socket, or
//! RNG directly — everything flows through the [`Io`](crate::driver::Io)
//! surface. That makes the choice of *host* a swappable detail:
//!
//! * [`BackendKind::Des`] — the deterministic discrete-event simulator
//!   (`quorumcc_sim::Sim`), via [`DesAdapter`](crate::driver::DesAdapter).
//!   Fully reproducible; supports fault plans, tracing, and chaos.
//! * [`BackendKind::Channels`] — a real-concurrency host: one OS thread per
//!   node, `std::sync::mpsc` channels as the transport, wall-clock timers.
//!   Messages race for real; scheduling is whatever the OS does. Supports
//!   probabilistic loss/duplication and scripted crash windows (mapped
//!   tick-for-tick onto the wall clock) but not scripted partitions or
//!   traces.
//!
//! Both backends run byte-for-byte the same `Driver` code and are harvested
//! into the same [`RunReport`](crate::cluster::RunReport) shape, which is
//! what makes the DES-vs-real equivalence suite (`tests/backends.rs`)
//! meaningful.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

use quorumcc_model::{Classified, Sequential};
use quorumcc_sim::{FaultPlan, NetworkConfig, ProcId, SimStats, SimTime};

use crate::cluster::Node;
use crate::driver::{CollectIo, Driver, Input, Output};
use crate::messages::Msg;

/// Which host executes the sans-I/O drivers for a
/// [`RunBuilder`](crate::cluster::RunBuilder) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Deterministic discrete-event simulation (the default). Supports
    /// every feature: fault plans, traces, chaos profiles, reproducible
    /// seeds.
    #[default]
    Des,
    /// Real concurrency over in-process channels: one thread per node,
    /// OS scheduling, wall-clock timers. Rejects scripted partitions and
    /// trace capture ([`ReplicationError::Unsupported`]); probabilistic
    /// drop/duplication from [`NetworkConfig`] still applies, and scripted
    /// crash windows from a [`FaultPlan`] map tick-for-tick onto the wall
    /// clock (deliveries and timers due while a site is dark are dropped,
    /// `Input::Recover` fires at the window end — the DES semantics).
    ///
    /// [`ReplicationError::Unsupported`]: crate::error::ReplicationError::Unsupported
    Channels,
}

/// Wall-clock duration of one logical tick under the channels backend.
///
/// Protocol timeouts are stated in simulator ticks; the real-time host maps
/// them onto the wall clock at this rate. 50µs keeps a default 1M-tick run
/// under a minute while leaving timer math in the same units everywhere.
const TICK: Duration = Duration::from_micros(50);

/// Hard wall-clock cap for a channels run, applied on top of the tick-scaled
/// `max_time` deadline so a wedged cluster cannot hang the host forever.
const WALL_CAP: Duration = Duration::from_secs(30);

/// splitmix64 — the same cheap mixer [`CollectIo`] uses for its entropy
/// stream, reused here to derive per-node chaos seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Bernoulli draw from a splitmix64 stream: advances `state` and returns
/// whether a uniform `[0, 1)` sample fell below `p`.
fn chance(state: &mut u64, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    *state = splitmix64(*state);
    let unit = (*state >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    unit < p
}

/// A message in flight between two node threads.
struct Envelope<M> {
    from: ProcId,
    msg: M,
}

/// The channel pair carrying a spec's message envelopes between nodes.
type Mailbox<S> = Vec<Sender<Envelope<Msg<<S as Sequential>::Inv, <S as Sequential>::Res>>>>;
type Inbox<S> = Vec<Receiver<Envelope<Msg<<S as Sequential>::Inv, <S as Sequential>::Res>>>>;

/// Cross-thread run counters, assembled into [`SimStats`] at the end.
#[derive(Default)]
struct SharedStats {
    sent: AtomicUsize,
    payload_msgs: AtomicUsize,
    delivered: AtomicUsize,
    dropped: AtomicUsize,
    duplicated: AtomicUsize,
    timers: AtomicUsize,
}

/// Messages enqueued but not yet fully processed by their receiver. A send
/// increments *before* the matching decrement of the envelope being handled,
/// so the counter can only read zero when the cluster is truly quiescent.
type InFlight = AtomicUsize;

/// Runs the node set to quiescence under real concurrency and returns the
/// finished drivers (in the same process-id order) plus transport stats.
///
/// The run ends when every client reports [`Client::is_done`] and the
/// network has drained, or when the tick-scaled `max_time` deadline (capped
/// at [`WALL_CAP`]) expires — mirroring the DES engine's `run(max_time)`
/// horizon.
///
/// Scripted crash windows in `faults` follow the DES engine's semantics:
/// while a site is inside a window, every envelope it receives and every
/// timer that comes due is dropped (counted in `SimStats::dropped`), and
/// [`Input::Recover`] is delivered once when the window closes.
///
/// [`Client::is_done`]: crate::client::Client::is_done
pub(crate) fn run_channels<S>(
    nodes: Vec<Node<S>>,
    net: NetworkConfig,
    faults: FaultPlan,
    seed: u64,
    max_time: SimTime,
) -> (Vec<Node<S>>, SimStats)
where
    S: Classified,
    Node<S>: Send,
{
    let n = nodes.len();
    let windows_by_proc: Vec<Vec<(SimTime, SimTime)>> = (0..n)
        .map(|p| {
            let mut w: Vec<(SimTime, SimTime)> = faults
                .crashes()
                .iter()
                .filter(|c| c.proc as usize == p)
                .map(|c| (c.from, c.until))
                .collect();
            w.sort_unstable();
            w
        })
        .collect();
    let n_clients = nodes
        .iter()
        .filter(|node| matches!(node, Node::Client(_)))
        .count();
    let mut txs: Mailbox<S> = Vec::with_capacity(n);
    let mut rxs: Inbox<S> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = mpsc::channel();
        txs.push(tx);
        rxs.push(rx);
    }

    let stats = SharedStats::default();
    let in_flight: InFlight = AtomicUsize::new(0);
    let done_clients = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let epoch = Instant::now();
    let now_tick = |epoch: &Instant| -> SimTime {
        (epoch.elapsed().as_micros() / TICK.as_micros()) as SimTime
    };

    let deadline = TICK
        .checked_mul(u32::try_from(max_time).unwrap_or(u32::MAX))
        .map_or(WALL_CAP, |d| d.min(WALL_CAP));

    let finished: Vec<Node<S>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (i, ((mut node, rx), windows)) in
            nodes.into_iter().zip(rxs).zip(windows_by_proc).enumerate()
        {
            let txs = txs.clone();
            let stats = &stats;
            let in_flight = &in_flight;
            let done_clients = &done_clients;
            let stop = &stop;
            let epoch = &epoch;
            handles.push(scope.spawn(move || {
                let me = i as ProcId;
                let mut io = CollectIo::new(me, seed ^ splitmix64(u64::from(me) + 1));
                let mut chaos = splitmix64(seed ^ (0x517c_c1b7_2722_0a95 ^ u64::from(me)));
                let mut timers: BinaryHeap<Reverse<(SimTime, u64, u64)>> = BinaryHeap::new();
                let mut timer_seq = 0u64;
                let mut done_flagged = false;
                let mut crash_idx = 0usize;
                let mut crashed = false;

                let dispatch = |io: &mut CollectIo<Msg<S::Inv, S::Res>>,
                                timers: &mut BinaryHeap<Reverse<(SimTime, u64, u64)>>,
                                timer_seq: &mut u64,
                                chaos: &mut u64,
                                now: SimTime| {
                    for out in io.take_outputs() {
                        match out {
                            Output::Send { to, msg, weight } => {
                                stats.sent.fetch_add(1, Ordering::Relaxed);
                                stats
                                    .payload_msgs
                                    .fetch_add(weight as usize, Ordering::Relaxed);
                                if chance(chaos, net.drop_prob) {
                                    stats.dropped.fetch_add(1, Ordering::Relaxed);
                                    continue;
                                }
                                let dup = chance(chaos, net.dup_prob);
                                in_flight.fetch_add(1, Ordering::SeqCst);
                                let second = dup.then(|| Envelope {
                                    from: me,
                                    msg: msg.clone(),
                                });
                                if txs[to as usize].send(Envelope { from: me, msg }).is_err() {
                                    in_flight.fetch_sub(1, Ordering::SeqCst);
                                    continue;
                                }
                                if let Some(copy) = second {
                                    stats.duplicated.fetch_add(1, Ordering::Relaxed);
                                    in_flight.fetch_add(1, Ordering::SeqCst);
                                    if txs[to as usize].send(copy).is_err() {
                                        in_flight.fetch_sub(1, Ordering::SeqCst);
                                    }
                                }
                            }
                            Output::SetTimer { delay, token } => {
                                timers.push(Reverse((now + delay, *timer_seq, token)));
                                *timer_seq += 1;
                            }
                        }
                    }
                };

                let t0 = now_tick(epoch);
                io.set_now(t0);
                node.handle(&mut io, Input::Start);
                dispatch(&mut io, &mut timers, &mut timer_seq, &mut chaos, t0);

                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let now = now_tick(epoch);
                    io.set_now(now);
                    // Scripted crash windows, mirroring the DES engine:
                    // everything due or delivered while the site is dark is
                    // dropped, and `Input::Recover` fires at the window end.
                    if let Some(&(from, until)) = windows.get(crash_idx) {
                        if !crashed && now >= from && now < until {
                            crashed = true;
                        }
                        if crashed {
                            if now < until {
                                while let Some(&Reverse((due, _, _))) = timers.peek() {
                                    if due > now {
                                        break;
                                    }
                                    timers.pop();
                                    stats.dropped.fetch_add(1, Ordering::Relaxed);
                                }
                                match rx.recv_timeout(Duration::from_millis(1)) {
                                    Ok(_) => {
                                        stats.dropped.fetch_add(1, Ordering::Relaxed);
                                        in_flight.fetch_sub(1, Ordering::SeqCst);
                                    }
                                    Err(RecvTimeoutError::Timeout) => {}
                                    Err(RecvTimeoutError::Disconnected) => break,
                                }
                                continue;
                            }
                            crashed = false;
                            crash_idx += 1;
                            node.handle(&mut io, Input::Recover);
                            dispatch(&mut io, &mut timers, &mut timer_seq, &mut chaos, now);
                        } else if now >= until {
                            // The thread slept across the whole window: drop
                            // what would have come due inside it, then run
                            // the recovery it owes.
                            let before = timers.len();
                            timers = timers
                                .drain()
                                .filter(|&Reverse((due, _, _))| due < from || due >= until)
                                .collect();
                            stats
                                .dropped
                                .fetch_add(before - timers.len(), Ordering::Relaxed);
                            crash_idx += 1;
                            node.handle(&mut io, Input::Recover);
                            dispatch(&mut io, &mut timers, &mut timer_seq, &mut chaos, now);
                        }
                    }
                    while let Some(&Reverse((due, _, token))) = timers.peek() {
                        if due > now {
                            break;
                        }
                        timers.pop();
                        stats.timers.fetch_add(1, Ordering::Relaxed);
                        node.handle(&mut io, Input::Timer { token });
                        dispatch(&mut io, &mut timers, &mut timer_seq, &mut chaos, now);
                    }
                    let wait = timers
                        .peek()
                        .map(|&Reverse((due, _, _))| TICK * due.saturating_sub(now) as u32)
                        .unwrap_or(Duration::from_millis(1))
                        .min(Duration::from_millis(1));
                    match rx.recv_timeout(wait) {
                        Ok(env) => {
                            let now = now_tick(epoch);
                            io.set_now(now);
                            node.handle(
                                &mut io,
                                Input::Deliver {
                                    from: env.from,
                                    msg: env.msg,
                                },
                            );
                            dispatch(&mut io, &mut timers, &mut timer_seq, &mut chaos, now);
                            stats.delivered.fetch_add(1, Ordering::Relaxed);
                            in_flight.fetch_sub(1, Ordering::SeqCst);
                        }
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                    if !done_flagged {
                        if let Node::Client(c) = &node {
                            if c.is_done() {
                                done_flagged = true;
                                done_clients.fetch_add(1, Ordering::SeqCst);
                            }
                        }
                    }
                }
                node
            }));
        }
        drop(txs);

        // Supervisor: wait for every client to finish and the network to
        // drain (two consecutive empty observations), or for the deadline.
        loop {
            std::thread::sleep(Duration::from_millis(1));
            if epoch.elapsed() >= deadline {
                break;
            }
            if done_clients.load(Ordering::SeqCst) == n_clients {
                let drain_cap = Instant::now() + Duration::from_secs(2);
                let mut calm = 0;
                while Instant::now() < drain_cap && calm < 2 {
                    if in_flight.load(Ordering::SeqCst) == 0 {
                        calm += 1;
                    } else {
                        calm = 0;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                break;
            }
        }
        stop.store(true, Ordering::SeqCst);
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let sim_stats = SimStats {
        sent: stats.sent.load(Ordering::Relaxed),
        payload_msgs: stats.payload_msgs.load(Ordering::Relaxed),
        delivered: stats.delivered.load(Ordering::Relaxed),
        dropped: stats.dropped.load(Ordering::Relaxed),
        duplicated: stats.duplicated.load(Ordering::Relaxed),
        reordered: 0,
        timers: stats.timers.load(Ordering::Relaxed),
        end_time: now_tick(&epoch),
    };
    (finished, sim_stats)
}
