//! Scoped status shipping + status GC (DESIGN §3.16) property tests:
//! gossip scoping changes what travels, never what commits, and a GC'd
//! tombstone must never let a lost write slip past the safety oracle.
//!
//! Decision-identity tests use contention-free workloads (each client
//! owns a disjoint object range), the same structural trick the
//! throughput-engine tests use: GC's `ResolveAck` frames shift every
//! subsequent network-delay draw, so under contention timing picks the
//! winners and cross-arm equality is not a theorem. With disjoint
//! ranges, decisions are a pure function of the workload, so the arms
//! must agree exactly. The contended regime is audited separately: the
//! oracle checks serializability (the claim that actually matters
//! there), including a chaos sweep with GC running under crashes,
//! partitions, and message loss.

use quorumcc_core::DependencyRelation;
use quorumcc_model::spec::ExploreBounds;
use quorumcc_model::{Classified, Enumerable};
use quorumcc_replication::chaos::{self, ChaosConfig};
use quorumcc_replication::cluster::{ProtocolConfig, RunBuilder, TuningConfig};
use quorumcc_replication::protocol::{Mode, Protocol};
use quorumcc_replication::workload::{generate, WorkloadSpec};
use quorumcc_replication::{ObjId, RunReport, Transaction};
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

fn bounds() -> ExploreBounds {
    ExploreBounds {
        depth: 4,
        ..ExploreBounds::default()
    }
}

const MODES: [Mode; 3] = [Mode::StaticTs, Mode::Hybrid, Mode::Dynamic2pl];

/// The three gossip configurations under comparison.
fn arms() -> [(&'static str, TuningConfig); 3] {
    [
        ("full", TuningConfig::default()),
        ("scoped", TuningConfig::default().scoped_statuses()),
        (
            "scoped_gc",
            TuningConfig::default().scoped_statuses().status_gc(2),
        ),
    ]
}

/// Contention-free by construction: client `c` only ever touches
/// objects in `[c*per, (c+1)*per)`, so no cross-client conflict exists
/// for any message timing.
fn disjoint_workload<S: Classified + Enumerable>(
    seed: u64,
    clients: usize,
    per_client: u16,
) -> Vec<Vec<Transaction<S::Inv>>> {
    let alphabet = S::invocations();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..clients)
        .map(|c| {
            (0..3)
                .map(|_| Transaction {
                    ops: (0..2)
                        .map(|_| {
                            let obj = ObjId(c as u16 * per_client + rng.gen_range(0..per_client));
                            (obj, alphabet[rng.gen_range(0..alphabet.len())].clone())
                        })
                        .collect(),
                })
                .collect()
        })
        .collect()
}

fn decisions<S: Classified + Enumerable>(r: &RunReport<S>) -> (usize, usize, usize) {
    let s = r.stats();
    (s.committed, s.aborted_conflict, s.aborted_unavailable)
}

/// A/B/C decision identity on contention-free workloads, for every
/// shipped ADT and every concurrency-control mode: full shipping,
/// scoped shipping, and scoped+GC commit exactly the same transactions.
#[test]
fn scoped_gc_decides_identically_to_full_shipping_for_every_adt_and_mode() {
    fn check<S: Classified + Enumerable>(mode: Mode, seed: u64) {
        let protocol = Protocol::new(mode, DependencyRelation::full::<S>());
        let mut base: Option<(usize, usize, usize)> = None;
        for (name, tuning) in arms() {
            let report = RunBuilder::<S>::new(3)
                .protocol(ProtocolConfig::new(protocol.clone()).txn_retries(4))
                .tuning(tuning)
                .seed(seed)
                .workload(disjoint_workload::<S>(seed, 3, 4))
                .run()
                .unwrap();
            let safety = report.safety(bounds());
            assert!(
                safety.is_ok(),
                "{} {mode} seed {seed} arm {name}: {safety}",
                S::NAME
            );
            let d = decisions(&report);
            assert!(
                d.0 > 0,
                "{} {mode} seed {seed} arm {name}: nothing committed",
                S::NAME
            );
            match &base {
                None => base = Some(d),
                Some(b) => assert_eq!(
                    d,
                    *b,
                    "{} {mode} seed {seed} arm {name}: decision drift vs full shipping",
                    S::NAME
                ),
            }
        }
    }
    for mode in MODES {
        for seed in [11, 12] {
            check::<quorumcc_adts::Queue>(mode, seed);
            check::<quorumcc_adts::Prom>(mode, seed);
            check::<quorumcc_adts::FlagSet>(mode, seed);
        }
    }
}

/// Under contention, decisions may legitimately differ across arms (the
/// extra `ResolveAck` traffic shifts timing) — but every history must
/// still pass the serializability oracle with scoped+GC on.
#[test]
fn scoped_gc_histories_audit_clean_for_every_adt_under_contention() {
    fn audit<S: Classified + Enumerable>(mode: Mode, seed: u64) {
        let alphabet = S::invocations();
        let w = generate(
            WorkloadSpec {
                clients: 3,
                txns_per_client: 3,
                ops_per_txn: 2,
                objects: 2,
                seed,
            },
            |rng| alphabet[rng.gen_range(0..alphabet.len())].clone(),
        );
        let report = RunBuilder::<S>::new(3)
            .protocol(
                ProtocolConfig::new(Protocol::new(mode, DependencyRelation::full::<S>()))
                    .txn_retries(4),
            )
            .tuning(TuningConfig::default().scoped_statuses().status_gc(2))
            .seed(seed)
            .workload(w)
            .run()
            .unwrap();
        let safety = report.safety(bounds());
        assert!(safety.is_ok(), "{} {mode} seed {seed}: {safety}", S::NAME);
    }
    for mode in MODES {
        for seed in [21, 22] {
            audit::<quorumcc_adts::Queue>(mode, seed);
            audit::<quorumcc_adts::Prom>(mode, seed);
            audit::<quorumcc_adts::FlagSet>(mode, seed);
        }
    }
}

/// 200 sampled fault plans (crashes, partitions, loss, duplication,
/// reordering) with status GC running on a small hysteresis: every
/// history stays oracle-clean. This is the load-bearing safety audit
/// for GC — a tombstone collected too early would let a site re-admit
/// or resurrect a write the quorum already settled, and the oracle
/// would flag the history as non-serializable.
#[test]
fn gc_chaos_sweep_stays_oracle_clean_under_crashes() {
    use quorumcc_model::testtypes::TestQueue;
    let protocol = Protocol::new(Mode::Hybrid, DependencyRelation::full::<TestQueue>());
    let cfg = ChaosConfig {
        gc: 2,
        objects: 2,
        ..ChaosConfig::default()
    };
    let outcomes = chaos::sweep::<TestQueue>(&protocol, &cfg, 3_316, 200, 0);
    let mut committed = 0u64;
    let mut recoveries = 0u64;
    for o in &outcomes {
        assert!(
            o.violations.is_empty(),
            "plan {}: GC under chaos broke the oracle: {:?}\nreplay: {}",
            o.plan.seed,
            o.violations,
            o.plan.encode()
        );
        committed += o.committed;
        recoveries += o.recoveries;
    }
    // The sweep must actually exercise the interesting regime: work
    // commits, and crashes force recoveries while GC is live.
    assert!(committed > 0, "sweep committed nothing");
    assert!(recoveries > 0, "sweep never exercised crash recovery");
}
