//! The observability contract: traces are deterministic (same seed ⇒
//! byte-identical render at every thread count of the relation
//! pipeline), golden for a pinned run, and telemetry reconciles with the
//! client-visible statistics.

use quorumcc_core::enumerate::{CorpusConfig, Property};
use quorumcc_core::verifier::ClauseSet;
use quorumcc_core::{minimal_dynamic_relation, minimal_static_relation, DependencyRelation};
use quorumcc_model::spec::ExploreBounds;
use quorumcc_model::testtypes::{QInv, TestQueue};
use quorumcc_replication::cluster::{ProtocolConfig, RunBuilder};
use quorumcc_replication::protocol::{Mode, Protocol};
use quorumcc_replication::workload::{generate, WorkloadSpec};
use quorumcc_sim::trace::TraceConfig;
use quorumcc_sim::NetworkConfig;
use rand::Rng;

fn bounds() -> ExploreBounds {
    ExploreBounds {
        depth: 4,
        max_states: 4_096,
        budget: 5_000_000,
    }
}

fn queue_workload(
    seed: u64,
    clients: usize,
    txns: usize,
) -> Vec<Vec<quorumcc_replication::Transaction<QInv>>> {
    generate(
        WorkloadSpec {
            clients,
            txns_per_client: txns,
            ops_per_txn: 2,
            objects: 1,
            seed,
        },
        |rng| {
            if rng.gen_bool(0.6) {
                QInv::Enq(rng.gen_range(1..=2))
            } else {
                QInv::Deq
            }
        },
    )
}

/// Runs a traced hybrid cluster with `rel` and returns the rendered
/// trace.
fn traced_render(rel: DependencyRelation, seed: u64) -> String {
    let report = RunBuilder::<TestQueue>::new(3)
        .protocol(ProtocolConfig::new(Protocol::new(Mode::Hybrid, rel)).txn_retries(3))
        .seed(seed)
        .trace(TraceConfig::unbounded())
        .workload(queue_workload(seed, 3, 3))
        .run()
        .unwrap();
    report.trace().expect("tracing enabled").render()
}

/// The end-to-end determinism gate: derive the protocol's dependency
/// relation through the *parallel* clause pipeline at several thread
/// counts, run the traced cluster with each, and demand byte-identical
/// traces. The thread knob must move timings only — never the trace.
#[test]
fn trace_is_identical_at_every_thread_count() {
    let relation_at = |threads: usize| -> DependencyRelation {
        let cfg = CorpusConfig {
            exhaustive_ops: 2,
            max_actions: 3,
            samples: 800,
            sample_ops: 4,
            seed: 7,
            bounds: bounds(),
            threads,
        };
        let cs = ClauseSet::extract::<TestQueue>(Property::Hybrid, &cfg, &[]);
        cs.minimal_relations_par(4, threads)
            .into_iter()
            .next()
            .expect("at least one minimal relation")
    };
    let reference = traced_render(relation_at(1), 42);
    assert!(!reference.is_empty());
    for threads in [2usize, 4, 0] {
        let render = traced_render(relation_at(threads), 42);
        assert_eq!(
            reference, render,
            "trace diverged when the relation pipeline ran at {threads} threads"
        );
    }
}

/// Same seed, same config ⇒ byte-identical traces run-over-run (no
/// hidden global state, wall clock, or allocator order in the tracer).
#[test]
fn trace_render_is_reproducible() {
    let rel = minimal_static_relation::<TestQueue>(bounds()).relation;
    let a = traced_render(rel.clone(), 17);
    let b = traced_render(rel, 17);
    assert_eq!(a, b);
}

/// Golden trace for the Theorem-12 object: a DoubleBuffer cluster on a
/// delay-1 lossless network, single producer/consumer pipeline. Pins the
/// exact event sequence the run opens with — the serialized format is an
/// interface now (`qcc trace`, saved `BENCH_*.json` artifacts), so
/// accidental format or scheduling drift must fail loudly.
#[test]
fn golden_trace_for_thm12_doublebuffer_run() {
    use quorumcc_adts::doublebuffer::DoubleBufferInv as DbI;
    use quorumcc_adts::DoubleBuffer;
    use quorumcc_core::certificates::doublebuffer_dynamic_relation;
    use quorumcc_replication::{ObjId, Transaction};

    let run = || {
        RunBuilder::<DoubleBuffer>::new(3)
            .protocol(ProtocolConfig::new(Protocol::new(
                Mode::Dynamic2pl,
                doublebuffer_dynamic_relation(),
            )))
            .network(NetworkConfig {
                min_delay: 1,
                max_delay: 1,
                ..NetworkConfig::default()
            })
            .seed(12)
            .trace(TraceConfig::unbounded())
            .workload(vec![vec![Transaction {
                ops: vec![
                    (ObjId(0), DbI::Produce(1)),
                    (ObjId(0), DbI::Transfer),
                    (ObjId(0), DbI::Consume),
                ],
            }]])
            .run()
            .unwrap()
    };
    let report = run();
    assert_eq!(report.stats().committed, 1);
    let render = report.trace().expect("tracing enabled").render();

    // Byte-identical across runs.
    assert_eq!(render, run().trace().unwrap().render());

    // The pinned opening: the client (site 3) wakes, begins its
    // transaction, fans the Produce read-phase out to all three
    // repositories, and the first replica answers with a reservation.
    let golden_prefix = "\
[       4] site=3   lam=1      timer token=0
[       4] site=3   lam=2      txn-begin action=300000
[       4] site=3   lam=3      phase-start obj=0 req=1 phase=read
[       4] site=3   lam=4      send to=0
[       4] site=3   lam=5      send to=1
[       4] site=3   lam=6      send to=2
[       5] site=0   lam=5      deliver from=3
[       5] site=0   lam=6      reserve obj=0 action=300000";
    let prefix: Vec<&str> = render.lines().take(8).collect();
    assert_eq!(prefix.join("\n"), golden_prefix);
}

/// Randomized reconciliation: for every mode and seed, the run's
/// telemetry must agree with the per-client statistics and the
/// simulator's message counters — the histograms are derived views, not
/// independent bookkeeping.
#[test]
fn telemetry_reconciles_with_client_stats() {
    for mode in [Mode::StaticTs, Mode::Hybrid, Mode::Dynamic2pl] {
        let rel = match mode {
            Mode::StaticTs | Mode::Hybrid => {
                minimal_static_relation::<TestQueue>(bounds()).relation
            }
            Mode::Dynamic2pl => minimal_static_relation::<TestQueue>(bounds())
                .relation
                .union(&minimal_dynamic_relation::<TestQueue>(bounds()).relation),
        };
        for seed in 0..6u64 {
            let report = RunBuilder::<TestQueue>::new(3)
                .protocol(ProtocolConfig::new(Protocol::new(mode, rel.clone())).txn_retries(4))
                .seed(seed)
                .workload(queue_workload(seed, 3, 3))
                .run()
                .unwrap();
            let totals = report.stats();
            let t = report.telemetry();
            assert_eq!(t.mode, mode.name());
            assert_eq!(t.committed as usize, totals.committed, "{mode} seed {seed}");
            assert_eq!(t.aborted_conflict as usize, totals.aborted_conflict);
            assert_eq!(t.aborted_unavailable as usize, totals.aborted_unavailable);
            assert_eq!(t.ops_completed as usize, totals.ops_completed);
            assert_eq!(
                t.decided() as usize,
                totals.committed + totals.aborted_conflict + totals.aborted_unavailable
            );
            let sim = report.sim_stats();
            assert_eq!(t.msgs_sent as usize, sim.sent);
            assert_eq!(t.msgs_delivered as usize, sim.delivered);
            assert_eq!(t.msgs_dropped as usize, sim.dropped);
            // Histograms are per-op views: one latency sample per
            // completed op, one final round-trip per completed op, at
            // least as many initial round-trips (conflicted reads also
            // complete an initial quorum).
            assert_eq!(t.op_latency.count() as u64, t.ops_completed);
            assert_eq!(t.final_rt.count() as u64, t.ops_completed);
            // Funnel: every completed read phase records an initial
            // round-trip; the evaluations that pass record a view size;
            // the writes that land complete the op. Each stage can only
            // shrink the count.
            assert!(t.initial_rt.count() >= t.view_sizes.count());
            assert!(t.view_sizes.count() as u64 >= t.ops_completed);
            // Log lengths: one sample per (repository, object).
            assert_eq!(
                t.log_lengths.count() as usize,
                report.repo_logs().iter().map(Vec::len).sum::<usize>()
            );
            // The JSON document round-trips the headline counters.
            let json = t.to_json();
            assert!(json.contains(&format!("\"committed\": {}", t.committed)));
            assert!(json.contains(&format!("\"msgs_sent\": {}", t.msgs_sent)));
        }
    }
}

/// Disabled tracing leaves no buffer behind and changes nothing
/// observable (stats, histories) vs an unbounded-trace run.
#[test]
fn tracing_is_observably_free() {
    let rel = minimal_static_relation::<TestQueue>(bounds()).relation;
    let build = || {
        RunBuilder::<TestQueue>::new(3)
            .protocol(ProtocolConfig::new(Protocol::new(Mode::Hybrid, rel.clone())).txn_retries(3))
            .seed(23)
            .workload(queue_workload(23, 3, 3))
    };
    let plain = build().run().unwrap();
    let traced = build().trace(TraceConfig::unbounded()).run().unwrap();
    assert!(plain.trace().is_none());
    assert!(traced.trace().is_some());
    assert_eq!(plain.stats(), traced.stats());
    assert_eq!(plain.sim_stats(), traced.sim_stats());
    assert_eq!(
        plain.history(quorumcc_replication::ObjId(0)),
        traced.history(quorumcc_replication::ObjId(0))
    );
    assert_eq!(plain.telemetry().to_json(), traced.telemetry().to_json());
}

/// Ring-buffered capture: a tiny capacity keeps only the newest events
/// and reports how many were evicted.
#[test]
fn ring_capture_keeps_the_tail() {
    let rel = minimal_static_relation::<TestQueue>(bounds()).relation;
    let full = RunBuilder::<TestQueue>::new(3)
        .protocol(ProtocolConfig::new(Protocol::new(
            Mode::Hybrid,
            rel.clone(),
        )))
        .seed(29)
        .trace(TraceConfig::unbounded())
        .workload(queue_workload(29, 2, 2))
        .run()
        .unwrap();
    let ringed = RunBuilder::<TestQueue>::new(3)
        .protocol(ProtocolConfig::new(Protocol::new(Mode::Hybrid, rel)))
        .seed(29)
        .trace(TraceConfig::ring(16))
        .workload(queue_workload(29, 2, 2))
        .run()
        .unwrap();
    let full = full.trace().unwrap();
    let ringed = ringed.trace().unwrap();
    assert_eq!(ringed.len(), 16);
    assert!(ringed.overwritten() > 0);
    // The ring holds exactly the tail of the full capture.
    let tail = &full.events()[full.events().len() - 16..];
    assert_eq!(ringed.events(), tail);
}
