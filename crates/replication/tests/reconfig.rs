//! The reconfiguration contract, end to end: joint configurations
//! preserve quorum intersection across epoch boundaries for every
//! mechanism's dependency relation (randomized over memberships and
//! threshold assignments), and a mid-partition reconfiguration run is
//! deterministic — byte-identical traces at every thread count of the
//! relation pipeline — with the epoch's install events in protocol order.

use quorumcc_core::certificates::prom_hybrid_relation;
use quorumcc_core::enumerate::{CorpusConfig, Property};
use quorumcc_core::verifier::ClauseSet;
use quorumcc_core::{minimal_dynamic_relation, minimal_static_relation, DependencyRelation};
use quorumcc_model::spec::ExploreBounds;
use quorumcc_model::testtypes::TestQueue;
use quorumcc_model::{Classified, EventClass};
use quorumcc_quorum::ThresholdAssignment;
use quorumcc_replication::cluster::{ProtocolConfig, RunBuilder};
use quorumcc_replication::protocol::{Mode, Protocol};
use quorumcc_replication::workload::{generate, WorkloadSpec};
use quorumcc_replication::{Config, ConfigState, ReconfigPolicy, TuningConfig};
use quorumcc_sim::trace::TraceConfig;
use quorumcc_sim::{FaultPlan, NetworkConfig, ProcId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bounds() -> ExploreBounds {
    ExploreBounds {
        depth: 4,
        max_states: 4_096,
        budget: 5_000_000,
    }
}

/// A random threshold assignment over `n` votes that is *legal* for
/// `rel`: initial thresholds are arbitrary, finals take whatever slack
/// the draw gave them but never less than the intersection constraint
/// `ti + tf > n` demands.
fn random_legal(
    rel: &DependencyRelation,
    n: u32,
    ops: &[&'static str],
    evs: &[EventClass],
    rng: &mut StdRng,
) -> ThresholdAssignment {
    let mut ta = ThresholdAssignment::new(n);
    for op in ops {
        ta.set_initial(op, rng.gen_range(1..=n));
    }
    for ev in evs {
        let mut tf = rng.gen_range(0..=n);
        for (op, e) in rel.iter() {
            if e == ev {
                tf = tf.max(n - ta.initial(op) + 1);
            }
        }
        ta.set_final(*ev, tf.min(n));
    }
    assert!(ta.validate(rel).is_ok());
    ta
}

/// A random nonempty membership drawn from sites `0..universe`.
fn random_members(universe: u32, rng: &mut StdRng) -> Vec<ProcId> {
    let size = rng.gen_range(2..=5.min(universe));
    let mut members: Vec<ProcId> = (0..universe).collect();
    // Fisher–Yates prefix.
    for i in 0..size as usize {
        let j = rng.gen_range(i..members.len());
        members.swap(i, j);
    }
    members.truncate(size as usize);
    members
}

/// The epoch-safety property: for every constrained pair `(op, ev)` of
/// `rel`, the joint configuration's quorums intersect the quorums of
/// *both* generations (and themselves) — no epoch boundary can put a
/// constrained invocation and the event it depends on onto disjoint
/// quorums.
fn check_joint_intersection(
    rel: &DependencyRelation,
    ops: &[&'static str],
    evs: &[EventClass],
    seed: u64,
) {
    const UNIVERSE: u32 = 8;
    let mut rng = StdRng::seed_from_u64(seed);
    for trial in 0..25 {
        let old_members = random_members(UNIVERSE, &mut rng);
        let new_members = random_members(UNIVERSE, &mut rng);
        let old = Config::new(
            0,
            old_members.iter().copied(),
            random_legal(rel, old_members.len() as u32, ops, evs, &mut rng),
        );
        let new = Config::new(
            1,
            new_members.iter().copied(),
            random_legal(rel, new_members.len() as u32, ops, evs, &mut rng),
        );
        let s_old = ConfigState::Stable(old.clone());
        let s_new = ConfigState::Stable(new.clone());
        let joint = ConfigState::Joint { old, new };
        for (op, ev) in rel.iter() {
            let ji = joint.initial_quorums(op, UNIVERSE as u8);
            let jf = joint.final_quorums(*ev, UNIVERSE as u8);
            for (gen, stable) in [("old", &s_old), ("new", &s_new)] {
                assert!(
                    ji.always_intersects(&stable.final_quorums(*ev, UNIVERSE as u8)),
                    "trial {trial}: joint initial({op}) misses {gen} final({ev})"
                );
                assert!(
                    stable
                        .initial_quorums(op, UNIVERSE as u8)
                        .always_intersects(&jf),
                    "trial {trial}: {gen} initial({op}) misses joint final({ev})"
                );
            }
            assert!(
                ji.always_intersects(&jf),
                "trial {trial}: joint initial({op}) misses joint final({ev})"
            );
        }
    }
}

/// The property above, for each mechanism's relation: the queue's
/// minimal static relation (`StaticTs`), its dynamic extension
/// (`Dynamic2pl`), and the PROM's hybrid relation (`Hybrid`).
#[test]
fn joint_configurations_preserve_intersection_for_all_mechanisms() {
    let static_rel = minimal_static_relation::<TestQueue>(bounds()).relation;
    let dynamic_rel = static_rel.union(&minimal_dynamic_relation::<TestQueue>(bounds()).relation);
    let q_ops = TestQueue::op_classes();
    let q_evs = TestQueue::event_classes();
    check_joint_intersection(&static_rel, &q_ops, &q_evs, 11);
    check_joint_intersection(&dynamic_rel, &q_ops, &q_evs, 13);

    let hybrid_rel = prom_hybrid_relation();
    let p_ops = vec!["Write", "Read", "Seal"];
    let p_evs = vec![
        EventClass::new("Write", "Ok"),
        EventClass::new("Write", "Disabled"),
        EventClass::new("Read", "Ok"),
        EventClass::new("Read", "Disabled"),
        EventClass::new("Seal", "Ok"),
    ];
    check_joint_intersection(&hybrid_rel, &p_ops, &p_evs, 17);
}

/// Three sites, all-majority thresholds over the full membership.
fn thresholds_over(n: u32, k: u32) -> ThresholdAssignment {
    let mut ta = ThresholdAssignment::new(n);
    for op in TestQueue::op_classes() {
        ta.set_initial(op, k);
    }
    for ev in TestQueue::event_classes() {
        ta.set_final(ev, k);
    }
    ta
}

/// Runs the mid-partition reconfiguration scenario: site 2 crashes at
/// t = 600, a partition cuts site 1 off during 650..900, and a manual
/// schedule installs epoch 1 (members {0, 1}) at t = 700 — squarely
/// inside the partition, so the install must survive rebroadcasts.
fn reconfig_run(rel: DependencyRelation) -> quorumcc_replication::RunReport<TestQueue> {
    let mut faults = FaultPlan::none();
    faults.crash(2, 600, 4_000);
    faults.partition([1], 650, 900);
    let workload = generate(
        WorkloadSpec {
            clients: 2,
            txns_per_client: 4,
            ops_per_txn: 2,
            objects: 1,
            seed: 5,
        },
        |rng| {
            if rng.gen_bool(0.6) {
                quorumcc_model::testtypes::QInv::Enq(rng.gen_range(1..=2))
            } else {
                quorumcc_model::testtypes::QInv::Deq
            }
        },
    );
    RunBuilder::<TestQueue>::new(3)
        .protocol(ProtocolConfig::new(Protocol::new(Mode::Hybrid, rel)).txn_retries(3))
        .thresholds(thresholds_over(3, 2))
        .network(NetworkConfig {
            min_delay: 1,
            max_delay: 1,
            ..NetworkConfig::default()
        })
        .tuning(TuningConfig::default().think_time(200))
        .faults(faults)
        .max_time(4_000)
        .seed(21)
        .trace(TraceConfig::unbounded())
        .reconfig(ReconfigPolicy::Manual(vec![(
            700,
            Config::new(1, [0, 1], thresholds_over(2, 2)),
        )]))
        .workload(workload)
        .run()
        .unwrap()
}

/// The golden gate for reconfiguration: derive the relation through the
/// parallel clause pipeline at 1/2/4/all threads, run the mid-partition
/// scenario with each, and demand byte-identical traces. Then pin the
/// protocol order of the epoch's install events and check epoch-boundary
/// intersection on the exact configurations the run used.
#[test]
fn midpartition_reconfig_trace_is_identical_at_every_thread_count() {
    let relation_at = |threads: usize| -> DependencyRelation {
        let cfg = CorpusConfig {
            exhaustive_ops: 2,
            max_actions: 3,
            samples: 800,
            sample_ops: 4,
            seed: 7,
            bounds: bounds(),
            threads,
        };
        let cs = ClauseSet::extract::<TestQueue>(Property::Hybrid, &cfg, &[]);
        cs.minimal_relations_par(4, threads)
            .into_iter()
            .next()
            .expect("at least one minimal relation")
    };

    let rel = relation_at(1);
    let report = reconfig_run(rel.clone());
    let reference = report.trace().expect("tracing enabled").render();
    assert!(!reference.is_empty());
    for threads in [2usize, 4, 0] {
        let render = reconfig_run(relation_at(threads)).trace().unwrap().render();
        assert_eq!(
            reference, render,
            "reconfig trace diverged when the relation pipeline ran at {threads} threads"
        );
    }

    // The epoch installs in protocol order: the coordinator starts,
    // repositories adopt, the epoch commits — and the partition delayed
    // the commit past its healing at t = 900.
    let pos = |needle: &str| {
        reference
            .lines()
            .position(|l| l.contains(needle))
            .unwrap_or_else(|| panic!("missing {needle} in trace"))
    };
    let start = pos("reconfig-start epoch=1");
    let adopt = pos("config-adopt epoch=1");
    let commit = pos("reconfig-commit epoch=1");
    assert!(start < adopt && adopt < commit);
    let records = report.reconfigs();
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].epoch, 1);
    assert_eq!(records[0].started, 700);
    assert!(
        records[0].committed > 900,
        "the partition must delay the install commit past its healing, got {}",
        records[0].committed
    );

    // Work continued across the boundary, atomically.
    assert!(report.stats().committed > 0);
    report.check_atomicity(bounds()).unwrap();

    // Epoch-boundary intersection on the run's own configurations: the
    // joint of (epoch 0 over {0,1,2}, epoch 1 over {0,1}) intersects
    // both generations for every constrained pair.
    let old = Config::new(0, [0, 1, 2], thresholds_over(3, 2));
    let new = Config::new(1, [0, 1], thresholds_over(2, 2));
    let s_old = ConfigState::Stable(old.clone());
    let s_new = ConfigState::Stable(new.clone());
    let joint = ConfigState::Joint { old, new };
    for (op, ev) in rel.iter() {
        let ji = joint.initial_quorums(op, 3);
        let jf = joint.final_quorums(*ev, 3);
        for stable in [&s_old, &s_new] {
            assert!(ji.always_intersects(&stable.final_quorums(*ev, 3)));
            assert!(stable.initial_quorums(op, 3).always_intersects(&jf));
        }
        assert!(ji.always_intersects(&jf));
    }
}

/// The reactive policy derives its schedule from the fault plan and
/// behaves like the equivalent manual install: an epoch commits, stale
/// clients retry for free, and the run stays atomic.
#[test]
fn reactive_policy_installs_an_epoch_and_stays_atomic() {
    let rel = minimal_static_relation::<TestQueue>(bounds()).relation;
    let mut faults = FaultPlan::none();
    faults.crash(2, 600, 6_000);
    let workload = generate(
        WorkloadSpec {
            clients: 2,
            txns_per_client: 6,
            ops_per_txn: 2,
            objects: 1,
            seed: 3,
        },
        |rng| {
            if rng.gen_bool(0.6) {
                quorumcc_model::testtypes::QInv::Enq(rng.gen_range(1..=2))
            } else {
                quorumcc_model::testtypes::QInv::Deq
            }
        },
    );
    let report = RunBuilder::<TestQueue>::new(3)
        .protocol(ProtocolConfig::new(Protocol::new(Mode::Hybrid, rel)).txn_retries(3))
        .thresholds(thresholds_over(3, 2))
        .tuning(TuningConfig::default().think_time(250))
        .faults(faults)
        .max_time(6_000)
        .seed(9)
        .reconfig(ReconfigPolicy::Reactive {
            detect_delay: 200,
            priority: vec![],
        })
        .workload(workload)
        .run()
        .unwrap();
    let records = report.reconfigs();
    assert_eq!(records.len(), 1, "one epoch for one crash");
    assert_eq!(records[0].epoch, 1);
    assert!(records[0].started >= 800);
    assert!(records[0].committed > records[0].started);
    assert!(report.stats().committed > 0);
    report.check_atomicity(bounds()).unwrap();
}

/// Manual schedules are validated structurally before the run starts.
#[test]
fn invalid_manual_schedules_are_rejected() {
    let rel = minimal_static_relation::<TestQueue>(bounds()).relation;
    let build = |schedule: Vec<(u64, Config)>| {
        RunBuilder::<TestQueue>::new(3)
            .protocol(ProtocolConfig::new(Protocol::new(
                Mode::Hybrid,
                rel.clone(),
            )))
            .thresholds(thresholds_over(3, 2))
            .reconfig(ReconfigPolicy::Manual(schedule))
            .workload(vec![vec![quorumcc_replication::Transaction {
                ops: vec![(
                    quorumcc_replication::ObjId(0),
                    quorumcc_model::testtypes::QInv::Enq(1),
                )],
            }]])
            .run()
    };
    // Member outside the cluster.
    let err = build(vec![(10, Config::new(1, [0, 7], thresholds_over(2, 2)))]).unwrap_err();
    assert!(err.to_string().contains("outside the cluster"), "{err}");
    // Non-increasing epochs.
    let err = build(vec![
        (10, Config::new(1, [0, 1], thresholds_over(2, 2))),
        (20, Config::new(1, [0, 2], thresholds_over(2, 2))),
    ])
    .unwrap_err();
    assert!(err.to_string().contains("epochs must increase"), "{err}");
    // Decreasing install times.
    let err = build(vec![
        (20, Config::new(1, [0, 1], thresholds_over(2, 2))),
        (10, Config::new(2, [0, 2], thresholds_over(2, 2))),
    ])
    .unwrap_err();
    assert!(err.to_string().contains("nondecreasing"), "{err}");
    // Membership/threshold size mismatch.
    let err = build(vec![(10, Config::new(1, [0, 1], thresholds_over(3, 2)))]).unwrap_err();
    assert!(
        matches!(
            err,
            quorumcc_replication::ReplicationError::InvalidReconfig(_)
        ),
        "{err}"
    );
}
