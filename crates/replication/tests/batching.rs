//! Throughput-engine integration tests: sharded object spaces, op
//! batching, and pipelined quorum rounds must preserve every safety
//! property the sequential engine has — audited histories across the
//! three concurrency-control modes and several ADTs, decision identity
//! against the unbatched engine at low contention, and byte-identity of
//! the defaults.

use quorumcc_core::DependencyRelation;
use quorumcc_model::spec::ExploreBounds;
use quorumcc_model::testtypes::{QInv, TestQueue};
use quorumcc_model::{Classified, Enumerable};
use quorumcc_replication::cluster::{ProtocolConfig, RunBuilder, TuningConfig};
use quorumcc_replication::protocol::{Mode, Protocol};
use quorumcc_replication::types::ShardMap;
use quorumcc_replication::workload::{generate, WorkloadSpec};
use quorumcc_replication::{ObjId, Transaction};
use rand::Rng as _;

fn bounds() -> ExploreBounds {
    ExploreBounds {
        depth: 4,
        ..ExploreBounds::default()
    }
}

fn queue_protocol(mode: Mode) -> Protocol {
    Protocol::new(mode, DependencyRelation::full::<TestQueue>())
}

/// A low-contention queue workload: many objects, so concurrent clients
/// mostly touch disjoint shards and pipelining has room to overlap.
fn spread_workload(seed: u64, clients: usize, objects: u16) -> Vec<Vec<Transaction<QInv>>> {
    generate(
        WorkloadSpec {
            clients,
            txns_per_client: 2,
            ops_per_txn: 4,
            objects,
            seed,
        },
        |rng| {
            if rng.gen_bool(0.6) {
                QInv::Enq(rng.gen_range(0..4))
            } else {
                QInv::Deq
            }
        },
    )
}

/// The decision triple both engines must agree on.
fn decisions<S: Classified + Enumerable>(
    r: &quorumcc_replication::RunReport<S>,
) -> (usize, usize, usize) {
    let s = r.stats();
    (s.committed, s.aborted_conflict, s.aborted_unavailable)
}

/// Objects hash to shards by `obj mod n`; every object lands in exactly
/// one shard, which is what makes per-shard quorum intersection
/// sufficient (conflicts are per-object).
#[test]
fn shard_map_partitions_the_object_space() {
    let map = ShardMap::new(4);
    assert_eq!(map.count(), 4);
    for o in 0..64u16 {
        assert_eq!(map.of(ObjId(o)).0, o % 4);
    }
    // Degenerate requests are clamped to one shard.
    assert_eq!(ShardMap::new(0).count(), 1);
    assert_eq!(ShardMap::default().count(), 1);
}

/// Sharding + batching + pipelining across all three modes: histories
/// stay atomic under the oracle, and work actually commits.
#[test]
fn batched_sharded_runs_stay_atomic_in_every_mode() {
    for mode in [Mode::StaticTs, Mode::Hybrid, Mode::Dynamic2pl] {
        for seed in 0..3u64 {
            let report = RunBuilder::<TestQueue>::new(3)
                .protocol(ProtocolConfig::new(queue_protocol(mode)).txn_retries(4))
                .tuning(TuningConfig::default().shards(4).batch(4))
                .seed(seed)
                .workload(spread_workload(seed, 3, 8))
                .run()
                .unwrap();
            assert!(report.stats().committed > 0, "{mode} seed {seed}");
            let safety = report.safety(bounds());
            assert!(safety.is_ok(), "{mode} seed {seed}: {safety}");
        }
    }
}

/// Oracle-audited histories for every shipped ADT under the throughput
/// engine (Queue, PROM, FlagSet) — the batched pipeline must not change
/// what any data type's quorum intersection guarantees.
#[test]
fn batched_sharded_histories_audit_clean_for_every_adt() {
    fn audit<S: Classified + Enumerable>(seed: u64) {
        let alphabet = S::invocations();
        let w = generate(
            WorkloadSpec {
                clients: 3,
                txns_per_client: 2,
                ops_per_txn: 3,
                objects: 8,
                seed,
            },
            |rng| alphabet[rng.gen_range(0..alphabet.len())].clone(),
        );
        let report = RunBuilder::<S>::new(3)
            .protocol(
                ProtocolConfig::new(Protocol::new(Mode::Hybrid, DependencyRelation::full::<S>()))
                    .txn_retries(4),
            )
            .tuning(TuningConfig::default().shards(4).batch(4))
            .seed(seed)
            .workload(w)
            .run()
            .unwrap();
        let safety = report.safety(bounds());
        assert!(safety.is_ok(), "{} seed {seed}: {safety}", S::NAME);
    }
    for seed in [5, 6] {
        audit::<quorumcc_adts::Queue>(seed);
        audit::<quorumcc_adts::Prom>(seed);
        audit::<quorumcc_adts::FlagSet>(seed);
    }
}

/// A contention-free workload by construction: each client owns a
/// disjoint object range, so no cross-client conflict exists for any
/// message timing — the regime where decisions must be a pure function
/// of the workload, not of batching or pipelining.
fn disjoint_workload(seed: u64, clients: usize, per_client: u16) -> Vec<Vec<Transaction<QInv>>> {
    use rand::rngs::StdRng;
    use rand::SeedableRng as _;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..clients)
        .map(|c| {
            (0..2)
                .map(|_| Transaction {
                    ops: (0..4)
                        .map(|_| {
                            let obj = ObjId(c as u16 * per_client + rng.gen_range(0..per_client));
                            let inv = if rng.gen_bool(0.6) {
                                QInv::Enq(rng.gen_range(0..4))
                            } else {
                                QInv::Deq
                            };
                            (obj, inv)
                        })
                        .collect(),
                })
                .collect()
        })
        .collect()
}

/// A/B decision identity: on low-contention workloads the batched,
/// pipelined engine reaches exactly the same commit/abort decisions as
/// the sequential engine — coalescing and overlap change *when* messages
/// travel, not *what* the quorum arithmetic concludes. The workload makes
/// the premise structural (disjoint per-client object ranges), so the
/// gate holds for every seed rather than empirically for a lucky few.
#[test]
fn batched_and_unbatched_decide_identically_at_low_contention() {
    for mode in [Mode::StaticTs, Mode::Hybrid, Mode::Dynamic2pl] {
        for seed in 0..4u64 {
            let run = |batch: u32, shards: u16| {
                RunBuilder::<TestQueue>::new(3)
                    .protocol(ProtocolConfig::new(queue_protocol(mode)))
                    .tuning(TuningConfig::default().shards(shards).batch(batch))
                    .seed(seed)
                    .workload(disjoint_workload(seed, 3, 4))
                    .run()
                    .unwrap()
            };
            let base = run(1, 1);
            assert_eq!(
                decisions(&base).1,
                0,
                "{mode} seed {seed}: premise broken — conflicts in a disjoint workload"
            );
            let batched = run(4, 4);
            assert_eq!(
                decisions(&base),
                decisions(&batched),
                "{mode} seed {seed}: decision drift"
            );
            // Batching strictly reduces physical messages per op.
            assert!(
                batched.telemetry().msgs_sent <= base.telemetry().msgs_sent,
                "{mode} seed {seed}: batching increased traffic"
            );
        }
    }
}

/// Telemetry accounting: an unbatched run reports zero envelopes and
/// `payload == sent`; a batched run reports envelopes, fills bounded by
/// the cap, and a logical payload count at least the physical one.
#[test]
fn batching_telemetry_accounts_for_envelopes() {
    let run = |batch: u32| {
        RunBuilder::<TestQueue>::new(3)
            .protocol(ProtocolConfig::new(queue_protocol(Mode::Hybrid)))
            .tuning(TuningConfig::default().shards(4).batch(batch))
            .seed(9)
            .workload(spread_workload(9, 3, 8))
            .run()
            .unwrap()
    };
    let plain = run(1);
    let t = plain.telemetry();
    assert_eq!(t.batch_size, 1);
    assert_eq!(t.batches_flushed, 0);
    assert_eq!(t.batch_fill.count(), 0);
    assert_eq!(t.payload_msgs, t.msgs_sent);

    let batched = run(4);
    let t = batched.telemetry();
    assert_eq!(t.batch_size, 4);
    assert!(t.batches_flushed > 0, "no envelopes flushed");
    assert_eq!(t.batch_fill.count() as u64, t.batches_flushed);
    assert!(t.batch_fill.max().unwrap_or(0) <= 4, "fill exceeded cap");
    assert!(
        t.batch_fill.max().unwrap_or(0) > 1,
        "nothing ever coalesced"
    );
    assert!(t.payload_msgs > t.msgs_sent, "coalescing saved no messages");
}

/// The defaults are byte-identical to explicitly requesting the
/// sequential engine: `shards(1).batch(1)` is not a code path of its own.
#[test]
fn explicit_batch_one_is_byte_identical_to_the_default() {
    let run = |tuning: TuningConfig| {
        RunBuilder::<TestQueue>::new(3)
            .protocol(ProtocolConfig::new(queue_protocol(Mode::Hybrid)))
            .tuning(tuning)
            .seed(12)
            .workload(spread_workload(12, 3, 4))
            .run()
            .unwrap()
    };
    let a = run(TuningConfig::default());
    let b = run(TuningConfig::default().shards(1).batch(1).batch_window(0));
    assert_eq!(a.stats(), b.stats());
    assert_eq!(a.sim_stats(), b.sim_stats());
    assert_eq!(a.repo_logs(), b.repo_logs());
    assert_eq!(a.telemetry().to_json(), b.telemetry().to_json());
}

/// A positive flush window holds under-filled envelopes across events and
/// still drains them: the run completes, decisions match the window-0
/// batched run's safety bar, and envelopes flush on the timer.
#[test]
fn flush_window_holds_and_drains_envelopes() {
    let report = RunBuilder::<TestQueue>::new(3)
        .protocol(ProtocolConfig::new(queue_protocol(Mode::Hybrid)).txn_retries(2))
        .tuning(TuningConfig::default().shards(4).batch(4).batch_window(3))
        .seed(21)
        .workload(spread_workload(21, 3, 8))
        .run()
        .unwrap();
    assert!(report.stats().committed > 0);
    let safety = report.safety(bounds());
    assert!(safety.is_ok(), "{safety}");
    assert!(report.telemetry().batches_flushed > 0);
}

/// Per-shard thresholds: a 2-shard cluster where each shard runs its own
/// (valid) assignment commits and audits clean; a mismatched count is a
/// typed error, not a silent ignore.
#[test]
fn per_shard_thresholds_apply_and_validate() {
    use quorumcc_quorum::ThresholdAssignment;
    let maj = |n: u32| {
        let mut ta = ThresholdAssignment::new(n);
        for op in TestQueue::op_classes() {
            ta.set_initial(op, n / 2 + 1);
        }
        for ev in TestQueue::event_classes() {
            ta.set_final(ev, n / 2 + 1);
        }
        ta
    };
    let report = RunBuilder::<TestQueue>::new(3)
        .protocol(ProtocolConfig::new(queue_protocol(Mode::Hybrid)))
        .tuning(TuningConfig::default().shards(2).batch(2))
        .shard_thresholds(vec![maj(3), maj(3)])
        .seed(4)
        .workload(spread_workload(4, 2, 4))
        .run()
        .unwrap();
    assert!(report.stats().committed > 0);
    let safety = report.safety(bounds());
    assert!(safety.is_ok(), "{safety}");

    let err = RunBuilder::<TestQueue>::new(3)
        .protocol(ProtocolConfig::new(queue_protocol(Mode::Hybrid)))
        .tuning(TuningConfig::default().shards(4))
        .shard_thresholds(vec![maj(3)])
        .seed(4)
        .workload(spread_workload(4, 2, 4))
        .run()
        .unwrap_err();
    assert!(err.to_string().contains("shard"), "{err}");
}
