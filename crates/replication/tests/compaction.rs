//! The shipping-optimization contract: delta log shipping and
//! committed-prefix compaction are *transport* changes — every decision a
//! cluster makes (commits, aborts, histories, traces) must be identical
//! to the full-log baseline, run for run and byte for byte. Only the
//! payloads and the retained log lengths may shrink.

use quorumcc_core::certificates::doublebuffer_dynamic_relation;
use quorumcc_core::parallel::map_indexed;
use quorumcc_core::{minimal_dynamic_relation, minimal_static_relation, DependencyRelation};
use quorumcc_model::spec::ExploreBounds;
use quorumcc_model::testtypes::TestQueue;
use quorumcc_model::{Classified, Enumerable};
use quorumcc_replication::cluster::{ProtocolConfig, RunBuilder, TuningConfig};
use quorumcc_replication::protocol::{Mode, Protocol};
use quorumcc_replication::workload::{generate, WorkloadSpec};
use quorumcc_replication::{CompactionConfig, ObjId, RunReport, RunTelemetry};
use quorumcc_sim::trace::TraceConfig;
use quorumcc_sim::{FaultPlan, NetworkConfig};
use rand::Rng;

fn bounds() -> ExploreBounds {
    ExploreBounds {
        depth: 4,
        max_states: 4_096,
        budget: 5_000_000,
    }
}

/// An eager compaction config so short test runs actually fold: prefixes
/// become checkpoints after ~50 ticks instead of the default 160, from
/// 2 entries up. The lag still dominates the default network's 10-tick
/// maximum delay, which is what correctness wants.
fn eager() -> CompactionConfig {
    CompactionConfig {
        lag: 50,
        min_entries: 2,
    }
}

/// The three shipping configurations under comparison.
fn tunings() -> [(&'static str, TuningConfig); 3] {
    [
        ("full", TuningConfig::default().full_log_shipping()),
        ("delta", TuningConfig::default()),
        ("delta+compact", TuningConfig::default().compaction(eager())),
    ]
}

fn run_one<S: Enumerable + Classified>(
    mode: Mode,
    rel: DependencyRelation,
    seed: u64,
    tuning: TuningConfig,
) -> RunReport<S> {
    let alphabet = S::invocations();
    let w = generate(
        WorkloadSpec {
            clients: 3,
            txns_per_client: 4,
            ops_per_txn: 2,
            objects: 2,
            seed,
        },
        |rng| alphabet[rng.gen_range(0..alphabet.len())].clone(),
    );
    RunBuilder::<S>::new(3)
        .protocol(ProtocolConfig::new(Protocol::new(mode, rel)).txn_retries(3))
        .tuning(tuning)
        .seed(seed)
        .workload(w)
        .run()
        .unwrap()
}

/// For one data type and mode, every shipping configuration must decide
/// every transaction identically on every seed, stay atomic, and — in
/// aggregate — ship strictly fewer entries (delta) and retain strictly
/// shorter logs (compaction) than the full baseline.
fn assert_shipping_preserves_outcomes<S: Enumerable + Classified>(mode: Mode) {
    let rel = match mode {
        Mode::StaticTs | Mode::Hybrid => minimal_static_relation::<S>(bounds()).relation,
        Mode::Dynamic2pl => minimal_static_relation::<S>(bounds())
            .relation
            .union(&minimal_dynamic_relation::<S>(bounds()).relation),
    };
    let mut shipped = [0u64; 3];
    let mut retained = [0usize; 3];
    for seed in 0..5u64 {
        let reports: Vec<RunReport<S>> = tunings()
            .into_iter()
            .map(|(_, tuning)| run_one::<S>(mode, rel.clone(), seed, tuning))
            .collect();
        let baseline = &reports[0];
        baseline.check_atomicity(bounds()).unwrap();
        for (i, report) in reports.iter().enumerate() {
            let (name, _) = tunings()[i];
            report.check_atomicity(bounds()).unwrap();
            assert_eq!(
                baseline.stats(),
                report.stats(),
                "{mode} seed {seed}: {name} changed decision counts"
            );
            for obj in [ObjId(0), ObjId(1)] {
                assert_eq!(
                    format!("{:?}", baseline.history(obj)),
                    format!("{:?}", report.history(obj)),
                    "{mode} seed {seed}: {name} changed the history of {obj:?}"
                );
            }
            shipped[i] += report.telemetry().log_entries_shipped;
            retained[i] += report
                .repo_logs()
                .iter()
                .flatten()
                .map(|(_, len)| len)
                .sum::<usize>();
        }
    }
    assert!(
        shipped[1] < shipped[0],
        "{mode}: delta shipping must ship fewer entries ({} vs {})",
        shipped[1],
        shipped[0]
    );
    assert!(
        shipped[2] <= shipped[1],
        "{mode}: compaction must not ship more than plain delta"
    );
    // Static-timestamp mode never folds (it serializes by Begin
    // timestamp and must keep old committed entries to detect TooLate),
    // so only the other modes must show shorter retained logs.
    if mode != Mode::StaticTs {
        assert!(
            retained[2] < retained[1],
            "{mode}: compaction must retain shorter logs ({} vs {})",
            retained[2],
            retained[1]
        );
    }
}

#[test]
fn queue_outcomes_survive_delta_and_compaction_in_every_mode() {
    for mode in [Mode::StaticTs, Mode::Hybrid, Mode::Dynamic2pl] {
        assert_shipping_preserves_outcomes::<TestQueue>(mode);
    }
}

#[test]
fn prom_outcomes_survive_delta_and_compaction() {
    assert_shipping_preserves_outcomes::<quorumcc_adts::Prom>(Mode::Hybrid);
}

#[test]
fn flagset_outcomes_survive_delta_and_compaction() {
    assert_shipping_preserves_outcomes::<quorumcc_adts::FlagSet>(Mode::Hybrid);
}

/// The golden Theorem-12 DoubleBuffer run (pinned byte-for-byte in
/// `tests/trace.rs`) must render the *same* trace under every shipping
/// configuration — compaction may not move a single message or timer.
#[test]
fn golden_thm12_trace_is_identical_under_every_shipping_config() {
    use quorumcc_adts::doublebuffer::DoubleBufferInv as DbI;
    use quorumcc_adts::DoubleBuffer;
    use quorumcc_replication::Transaction;

    let run = |tuning: TuningConfig| {
        RunBuilder::<DoubleBuffer>::new(3)
            .protocol(ProtocolConfig::new(Protocol::new(
                Mode::Dynamic2pl,
                doublebuffer_dynamic_relation(),
            )))
            .network(NetworkConfig {
                min_delay: 1,
                max_delay: 1,
                ..NetworkConfig::default()
            })
            .tuning(tuning)
            .seed(12)
            .trace(TraceConfig::unbounded())
            .workload(vec![vec![Transaction {
                ops: vec![
                    (ObjId(0), DbI::Produce(1)),
                    (ObjId(0), DbI::Transfer),
                    (ObjId(0), DbI::Consume),
                ],
            }]])
            .run()
            .unwrap()
    };
    let baseline = run(TuningConfig::default().full_log_shipping());
    assert_eq!(baseline.stats().committed, 1);
    let reference = baseline.trace().unwrap().render();
    for (name, tuning) in tunings() {
        let report = run(tuning);
        assert_eq!(
            reference,
            report.trace().unwrap().render(),
            "Thm-12 trace diverged under {name}"
        );
        assert_eq!(baseline.stats(), report.stats());
    }
}

/// The mid-partition reconfiguration scenario from `tests/reconfig.rs`
/// (crash at t = 600, partition 650..900, epoch 1 installed inside the
/// partition) must also be trace-identical: compaction interacts with
/// state transfer to fresh members, and even that transfer may only
/// change payloads, never the event sequence.
#[test]
fn midpartition_reconfig_trace_is_identical_under_every_shipping_config() {
    use quorumcc_model::testtypes::QInv;
    use quorumcc_quorum::ThresholdAssignment;
    use quorumcc_replication::{Config, ReconfigPolicy};

    let thresholds_over = |n: u32, k: u32| {
        let mut ta = ThresholdAssignment::new(n);
        for op in TestQueue::op_classes() {
            ta.set_initial(op, k);
        }
        for ev in TestQueue::event_classes() {
            ta.set_final(ev, k);
        }
        ta
    };
    let rel = minimal_static_relation::<TestQueue>(bounds()).relation;
    let run = |tuning: TuningConfig| {
        let mut faults = FaultPlan::none();
        faults.crash(2, 600, 4_000);
        faults.partition([1], 650, 900);
        let workload = generate(
            WorkloadSpec {
                clients: 2,
                txns_per_client: 4,
                ops_per_txn: 2,
                objects: 1,
                seed: 5,
            },
            |rng| {
                if rng.gen_bool(0.6) {
                    QInv::Enq(rng.gen_range(1..=2))
                } else {
                    QInv::Deq
                }
            },
        );
        RunBuilder::<TestQueue>::new(3)
            .protocol(ProtocolConfig::new(Protocol::new(Mode::Hybrid, rel.clone())).txn_retries(3))
            .thresholds(thresholds_over(3, 2))
            .network(NetworkConfig {
                min_delay: 1,
                max_delay: 1,
                ..NetworkConfig::default()
            })
            .tuning(tuning.think_time(200))
            .faults(faults)
            .max_time(4_000)
            .seed(21)
            .trace(TraceConfig::unbounded())
            .reconfig(ReconfigPolicy::Manual(vec![(
                700,
                Config::new(1, [0, 1], thresholds_over(2, 2)),
            )]))
            .workload(workload)
            .run()
            .unwrap()
    };
    let baseline = run(TuningConfig::default().full_log_shipping());
    let reference = baseline.trace().unwrap().render();
    assert!(!reference.is_empty());
    for (name, tuning) in tunings() {
        let report = run(tuning);
        assert_eq!(
            reference,
            report.trace().unwrap().render(),
            "reconfig trace diverged under {name}"
        );
        assert_eq!(baseline.stats(), report.stats());
    }
}

/// The experiment binaries fan independent seeded runs out over
/// `quorumcc_core::parallel` and merge telemetry in item order. That
/// merged document must be byte-identical at every thread count — with
/// compaction and delta shipping on.
#[test]
fn merged_telemetry_is_identical_at_every_thread_count() {
    let rel = minimal_static_relation::<TestQueue>(bounds()).relation;
    let seeds: Vec<u64> = (0..10).collect();
    let merged_at = |threads: usize| -> String {
        let tels: Vec<RunTelemetry> = map_indexed(threads, &seeds, |_, &seed| {
            run_one::<TestQueue>(
                Mode::Hybrid,
                rel.clone(),
                seed,
                TuningConfig::default().compaction(eager()),
            )
            .telemetry()
            .clone()
        });
        let mut merged = RunTelemetry::default();
        for t in &tels {
            merged.merge(t);
        }
        merged.to_json()
    };
    let reference = merged_at(1);
    for threads in [2usize, 4, 0] {
        assert_eq!(
            reference,
            merged_at(threads),
            "merged telemetry diverged at {threads} threads"
        );
    }
}
