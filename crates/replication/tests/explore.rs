//! Explorer integration tests: both planted bugs found at minimal depth
//! (and strictly faster than chaos sampling), witness specs that replay
//! byte-identically across thread counts, POR-soundness A/B runs, and
//! the sound protocol exploring clean to its depth budget.

use quorumcc_core::parallel::map_indexed;
use quorumcc_core::DependencyRelation;
use quorumcc_model::testtypes::{QInv, TestQueue};
use quorumcc_replication::chaos::{self, ChaosConfig};
use quorumcc_replication::explore::{
    explore_workload, replay_workload, ExploreSetup, ExploreSpec, Knob,
};
use quorumcc_replication::protocol::{Mode, Protocol};
use quorumcc_replication::types::ObjId;
use quorumcc_replication::Transaction;
use quorumcc_sim::ExploreConfig;

fn queue_protocol(mode: Mode) -> Protocol {
    Protocol::new(mode, DependencyRelation::full::<TestQueue>())
}

fn txn(ops: &[QInv]) -> Vec<Transaction<QInv>> {
    vec![Transaction {
        ops: ops.iter().map(|i| (ObjId(0), i.clone())).collect(),
    }]
}

/// The canonical skip-final-ack witness shape: two sites, two clients
/// racing an enqueue against a dequeue on one object. Committing the
/// write at send time lets the commit outrun its own log entries — a
/// lost write the oracle sees at the first commit boundary.
fn skip_ack_shape() -> (ExploreSetup, Vec<Vec<Transaction<QInv>>>) {
    let setup = ExploreSetup {
        sites: 2,
        clients: 2,
        knob: Knob::SkipFinalAck,
        ..ExploreSetup::default()
    };
    let workload = vec![txn(&[QInv::Enq(7)]), txn(&[QInv::Deq])];
    (setup, workload)
}

/// The canonical weaken witness shape: *three* sites (at two, the
/// weakened initial threshold 1 still intersects the final quorum 2,
/// since 1 + 2 > 2 — the bug is unobservable), two clients racing an
/// enqueue against a dequeue.
fn weaken_shape() -> (ExploreSetup, Vec<Vec<Transaction<QInv>>>) {
    let setup = ExploreSetup {
        sites: 3,
        clients: 2,
        narrow: true,
        knob: Knob::WeakenReadQuorum,
        ..ExploreSetup::default()
    };
    let workload = vec![txn(&[QInv::Enq(7)]), txn(&[QInv::Deq])];
    (setup, workload)
}

fn deep_cfg() -> ExploreConfig {
    ExploreConfig {
        max_depth: 40,
        ..ExploreConfig::default()
    }
}

/// How many plans a 200-plan chaos sweep needs before the first
/// violation (200 if it never finds one).
fn chaos_plans_to_first_violation(knob: Knob) -> u64 {
    let cfg = ChaosConfig {
        weaken_read_quorum: knob == Knob::WeakenReadQuorum,
        skip_final_ack: knob == Knob::SkipFinalAck,
        ..ChaosConfig::default()
    };
    let outcomes = chaos::sweep::<TestQueue>(&queue_protocol(Mode::Hybrid), &cfg, 0xC0FFEE, 200, 1);
    outcomes
        .iter()
        .position(|o| !o.violations.is_empty())
        .map_or(200, |i| i as u64 + 1)
    // position is the 0-based plan index; +1 = plans *run* to find it.
}

#[test]
fn explorer_finds_skip_final_ack_minimally() {
    let (setup, workload) = skip_ack_shape();
    let out = explore_workload::<TestQueue>(
        &queue_protocol(Mode::Hybrid),
        &setup,
        workload.clone(),
        deep_cfg(),
    )
    .expect("valid shape");
    let w = out.witness.expect("planted bug must be found");
    assert!(
        w.verdict.contains("lost write"),
        "expected a lost write, got: {}",
        w.verdict
    );
    // Iterative deepening with step 1 makes the first witness minimal:
    // no schedule shorter than the witness violates.
    assert_eq!(out.stats.max_depth_reached, w.schedule.len());

    // The witness replays to the same verdict.
    let r =
        replay_workload::<TestQueue>(&queue_protocol(Mode::Hybrid), &setup, workload, &w.schedule)
            .expect("valid shape");
    assert_eq!(r.verdict.as_deref(), Some(w.verdict.as_str()));
}

#[test]
fn explorer_finds_weaken_read_quorum_minimally() {
    let (setup, workload) = weaken_shape();
    let out = explore_workload::<TestQueue>(
        &queue_protocol(Mode::Hybrid),
        &setup,
        workload.clone(),
        deep_cfg(),
    )
    .expect("valid shape");
    let w = out
        .witness
        .unwrap_or_else(|| panic!("planted bug must be found; stats: {:?}", out.stats));
    assert_eq!(out.stats.max_depth_reached, w.schedule.len());
    let r =
        replay_workload::<TestQueue>(&queue_protocol(Mode::Hybrid), &setup, workload, &w.schedule)
            .expect("valid shape");
    assert_eq!(r.verdict.as_deref(), Some(w.verdict.as_str()));
}

#[test]
fn explorer_beats_chaos_sweep_on_both_knobs() {
    for (knob, (setup, workload)) in [
        (Knob::SkipFinalAck, skip_ack_shape()),
        (Knob::WeakenReadQuorum, weaken_shape()),
    ] {
        let out = explore_workload::<TestQueue>(
            &queue_protocol(Mode::Hybrid),
            &setup,
            workload,
            deep_cfg(),
        )
        .expect("valid shape");
        assert!(out.witness.is_some(), "{knob:?}: witness not found");
        let chaos_plans = chaos_plans_to_first_violation(knob);
        assert!(
            out.stats.schedules < chaos_plans,
            "{knob:?}: explorer examined {} complete schedules, chaos needed {} full plans",
            out.stats.schedules,
            chaos_plans
        );
    }
}

#[test]
fn sound_config_explores_clean() {
    // The sound protocol on the same racing shape: every interleaving to
    // the depth budget is violation-free, in all three modes.
    for mode in [Mode::Hybrid, Mode::StaticTs, Mode::Dynamic2pl] {
        let (mut setup, workload) = skip_ack_shape();
        setup.knob = Knob::None;
        let out = explore_workload::<TestQueue>(
            &queue_protocol(mode),
            &setup,
            workload,
            ExploreConfig {
                max_depth: 14,
                ..ExploreConfig::default()
            },
        )
        .expect("valid shape");
        assert!(
            out.witness.is_none(),
            "{mode:?}: sound protocol flagged: {:?}",
            out.witness
        );
        assert!(out.stats.schedules > 0 || out.stats.max_depth_reached == 14);
    }
}

#[test]
fn witness_spec_round_trips() {
    let (setup, _) = weaken_shape();
    let spec = ExploreSpec {
        mode: "hybrid".to_string(),
        setup,
        depth: 24,
        por: true,
        sched: vec![0, 1, 4, 2],
    };
    let line = spec.to_string();
    assert_eq!(ExploreSpec::parse(&line).expect("round trip"), spec);
    // And the documented example parses.
    let ex = "mode=hybrid;sites=3;clients=2;txns=1;ops=1;objects=1;seed=5;depth=24;por=1;knob=weaken;sched=0.1.4.2";
    let parsed = ExploreSpec::parse(ex).expect("doc example");
    assert_eq!(parsed.setup.knob, Knob::WeakenReadQuorum);
    assert_eq!(parsed.sched, vec![0, 1, 4, 2]);
    assert_eq!(parsed.to_string(), ex);
}

#[test]
fn witness_replays_byte_identically_across_threads() {
    let (setup, workload) = skip_ack_shape();
    let protocol = queue_protocol(Mode::Hybrid);
    let out = explore_workload::<TestQueue>(&protocol, &setup, workload.clone(), deep_cfg())
        .expect("valid shape");
    let w = out.witness.expect("planted bug must be found");

    let reference = replay_workload::<TestQueue>(&protocol, &setup, workload.clone(), &w.schedule)
        .expect("valid shape");
    assert!(reference.verdict.is_some());
    let ref_steps = reference.steps.join("\n");

    // The same replay fanned out over every supported thread count must
    // render the exact same bytes and reach the same verdict.
    for threads in [1usize, 2, 4, 0] {
        let idxs: Vec<u64> = (0..8).collect();
        let replays = map_indexed(threads, &idxs, |_, _| {
            replay_workload::<TestQueue>(&protocol, &setup, workload.clone(), &w.schedule)
                .expect("valid shape")
        });
        for r in replays {
            assert_eq!(r.steps.join("\n"), ref_steps, "threads={threads}");
            assert_eq!(r.verdict, reference.verdict, "threads={threads}");
        }
    }
}

#[test]
fn por_is_sound_across_shapes_and_modes() {
    // A/B: partial-order reduction must not change any verdict — only
    // the amount of work. Three shapes (one with each knob, one sound)
    // times three modes.
    let shapes = [
        (skip_ack_shape(), "skipack"),
        (weaken_shape(), "weaken"),
        (
            {
                let (mut s, w) = skip_ack_shape();
                s.knob = Knob::None;
                (s, w)
            },
            "sound",
        ),
    ];
    for mode in [Mode::Hybrid, Mode::StaticTs, Mode::Dynamic2pl] {
        for ((setup, workload), label) in shapes.clone() {
            let cfg_depth = if label == "sound" { 12 } else { 40 };
            let run = |por: bool| {
                explore_workload::<TestQueue>(
                    &queue_protocol(mode),
                    &setup,
                    workload.clone(),
                    ExploreConfig {
                        max_depth: cfg_depth,
                        por,
                        ..ExploreConfig::default()
                    },
                )
                .expect("valid shape")
            };
            let (on, off) = (run(true), run(false));
            assert_eq!(
                on.witness.as_ref().map(|w| w.verdict.clone()),
                off.witness.as_ref().map(|w| w.verdict.clone()),
                "{mode:?}/{label}: POR changed the verdict"
            );
            if let (Some(a), Some(b)) = (&on.witness, &off.witness) {
                assert_eq!(
                    a.schedule.len(),
                    b.schedule.len(),
                    "{mode:?}/{label}: POR changed the minimal witness depth"
                );
            }
            assert!(
                on.stats.states <= off.stats.states,
                "{mode:?}/{label}: POR explored more states ({} vs {})",
                on.stats.states,
                off.stats.states
            );
        }
    }
}
