//! End-to-end soundness: simulated replicated clusters must produce
//! histories satisfying their protocol's atomicity property — and
//! deliberately broken quorum assignments must be observably unsound.

use quorumcc_core::certificates::prom_hybrid_relation;
use quorumcc_core::{minimal_dynamic_relation, minimal_static_relation, DependencyRelation};
use quorumcc_model::spec::ExploreBounds;
use quorumcc_model::testtypes::{QInv, TestQueue, TestRegister};
use quorumcc_model::EventClass;
use quorumcc_quorum::ThresholdAssignment;
use quorumcc_replication::cluster::{ProtocolConfig, RunBuilder, TuningConfig};
use quorumcc_replication::error::ReplicationError;
use quorumcc_replication::protocol::{Mode, Protocol};
use quorumcc_replication::workload::{generate, WorkloadSpec};
use quorumcc_replication::{Fanout, ObjId, RunTelemetry, Transaction};
use quorumcc_sim::{FaultPlan, NetworkConfig};
use rand::Rng;

fn bounds() -> ExploreBounds {
    ExploreBounds {
        depth: 5,
        ..ExploreBounds::default()
    }
}

fn queue_rel(mode: Mode) -> DependencyRelation {
    match mode {
        // ≥S is both the static relation and (by Theorem 4) a hybrid
        // dependency relation for the queue.
        Mode::StaticTs | Mode::Hybrid => minimal_static_relation::<TestQueue>(bounds()).relation,
        Mode::Dynamic2pl => {
            // 2PL conflicts are non-commutation, and the view must still
            // observe everything the static relation demands; use the
            // union (a valid dynamic dependency relation — supersets of
            // ≥D remain dependency relations).
            minimal_static_relation::<TestQueue>(bounds())
                .relation
                .union(&minimal_dynamic_relation::<TestQueue>(bounds()).relation)
        }
    }
}

fn queue_protocol(mode: Mode) -> ProtocolConfig {
    ProtocolConfig::new(Protocol::new(mode, queue_rel(mode)))
}

fn queue_workload(seed: u64, clients: usize, txns: usize) -> Vec<Vec<Transaction<QInv>>> {
    generate(
        WorkloadSpec {
            clients,
            txns_per_client: txns,
            ops_per_txn: 2,
            objects: 1,
            seed,
        },
        |rng| {
            if rng.gen_bool(0.6) {
                QInv::Enq(rng.gen_range(1..=2))
            } else {
                QInv::Deq
            }
        },
    )
}

/// Serializes a run's telemetry next to the theory pipeline's
/// `BENCH_*.json` files (target tmpdir under `cargo test`).
fn write_bench_telemetry(id: &str, telemetry: &RunTelemetry) {
    let path = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("BENCH_{id}.json"));
    let body = format!(
        "{{\n  \"id\": \"{id}\",\n  \"telemetry\": {}\n}}\n",
        telemetry.to_json()
    );
    std::fs::write(&path, body).expect("write BENCH json");
}

/// The central soundness loop: for every protocol mode and several seeds,
/// the captured history satisfies the protocol's atomicity property.
#[test]
fn captured_histories_satisfy_each_mode() {
    for mode in [Mode::StaticTs, Mode::Hybrid, Mode::Dynamic2pl] {
        for seed in 0..5u64 {
            let report = RunBuilder::<TestQueue>::new(3)
                // Backoff-retry resolves conflict storms (dynamic 2PL can
                // otherwise abort every transaction of a contended run).
                .protocol(queue_protocol(mode).txn_retries(6))
                .seed(seed)
                .workload(queue_workload(seed, 3, 3))
                .run()
                .unwrap();
            let totals = report.stats();
            assert!(
                totals.committed > 0,
                "{mode} seed {seed}: nothing committed"
            );
            report.check_atomicity(bounds()).unwrap_or_else(|obj| {
                panic!(
                    "{mode} seed {seed}: non-atomic history for {obj}:\n{:?}",
                    report.history(obj).entries()
                )
            });
        }
    }
}

/// Same seed ⇒ byte-identical histories (the substrate is deterministic).
#[test]
fn runs_are_deterministic() {
    let run = || {
        let report = RunBuilder::<TestQueue>::new(3)
            .protocol(queue_protocol(Mode::Hybrid))
            .seed(99)
            .workload(queue_workload(99, 3, 3))
            .run()
            .unwrap();
        report.history(ObjId(0))
    };
    assert_eq!(run(), run());
}

/// Hybrid permits what dynamic refuses: concurrent enqueues. Under
/// contention the hybrid protocol commits at least as many transactions
/// and suffers no more conflict aborts than strict 2PL — the concurrency
/// half of the paper's Figure 1-1.
#[test]
fn hybrid_aborts_no_more_than_dynamic_under_contention() {
    let mut hybrid_aborts = 0usize;
    let mut dynamic_aborts = 0usize;
    for seed in 0..8u64 {
        // Enqueue-heavy workload: Enq/Enq conflicts under ≥D only.
        let w = generate(
            WorkloadSpec {
                clients: 4,
                txns_per_client: 4,
                ops_per_txn: 2,
                objects: 1,
                seed,
            },
            |rng| QInv::Enq(rng.gen_range(1..=2)),
        );
        let h = RunBuilder::<TestQueue>::new(3)
            .protocol(queue_protocol(Mode::Hybrid))
            .seed(seed)
            .workload(w.clone())
            .run()
            .unwrap();
        let d = RunBuilder::<TestQueue>::new(3)
            .protocol(queue_protocol(Mode::Dynamic2pl))
            .seed(seed)
            .workload(w)
            .run()
            .unwrap();
        hybrid_aborts += h.stats().aborted_conflict;
        dynamic_aborts += d.stats().aborted_conflict;
        // The telemetry's conflict counter agrees with the client stats.
        assert_eq!(
            d.telemetry().aborted_conflict as usize,
            d.stats().aborted_conflict
        );
    }
    assert!(
        hybrid_aborts <= dynamic_aborts,
        "hybrid {hybrid_aborts} > dynamic {dynamic_aborts}"
    );
    assert!(
        dynamic_aborts > 0,
        "contention too low to exercise Enq/Enq locking"
    );
}

/// The §4 PROM quorum assignment (Read=1, Seal=n, Write=1) really works:
/// an end-to-end write/seal/read lifecycle over 5 repositories.
#[test]
fn prom_lifecycle_with_paper_quorums() {
    use quorumcc_adts::prom::{PromInv, PromRes};
    use quorumcc_adts::Prom;

    let n = 5;
    let mut ta = ThresholdAssignment::new(n);
    ta.set_initial("Read", 1);
    ta.set_initial("Write", 1);
    ta.set_initial("Seal", n);
    ta.set_final(EventClass::new("Seal", "Ok"), n);
    ta.set_final(EventClass::new("Write", "Ok"), 1);
    ta.set_final(EventClass::new("Read", "Disabled"), 1);

    // One client, three sequential transactions: Write → Seal → Read.
    // (Concurrent interleavings are exercised by the other tests; here we
    // demonstrate the *quorum sizes* of the §4 table end to end.)
    let w: Vec<Vec<Transaction<PromInv>>> = vec![vec![
        Transaction {
            ops: vec![(ObjId(0), PromInv::Write(42))],
        },
        Transaction {
            ops: vec![(ObjId(0), PromInv::Seal)],
        },
        Transaction {
            ops: vec![(ObjId(0), PromInv::Read)],
        },
    ]];
    let report = RunBuilder::<Prom>::new(n)
        .protocol(ProtocolConfig::new(Protocol::new(
            Mode::Hybrid,
            prom_hybrid_relation(),
        )))
        .thresholds(ta)
        .seed(3)
        .workload(w)
        .run()
        .unwrap();
    report
        .check_atomicity(bounds())
        .unwrap_or_else(|o| panic!("non-atomic PROM history for {o}"));
    assert_eq!(report.stats().committed, 3);
    // The read ran after the seal and must observe the sealed 42 — through
    // the Seal's propagated view, since initial(Read)=1 does not intersect
    // final(Write/Ok)=1 directly.
    let h = report.history(ObjId(0));
    let read_ok = h.entries().iter().any(|e| {
        matches!(
            e.event().map(|ev| (&ev.inv, &ev.res)),
            Some((PromInv::Read, PromRes::Item(42)))
        )
    });
    assert!(read_ok, "{h}");
}

/// Quorum validation refuses assignments that violate the dependency
/// relation — as a typed error on the new surface.
#[test]
fn invalid_thresholds_are_rejected() {
    let mut ta = ThresholdAssignment::new(3);
    // Everything 1: Deq's initial quorum cannot see Enq finals.
    for op in ["Enq", "Deq"] {
        ta.set_initial(op, 1);
    }
    let err = RunBuilder::<TestQueue>::new(3)
        .protocol(queue_protocol(Mode::Hybrid))
        .thresholds(ta)
        .workload(queue_workload(1, 2, 2))
        .run()
        .unwrap_err();
    assert!(matches!(err, ReplicationError::InvalidThresholds(_)));
    assert!(err.to_string().contains("violate the dependency relation"));
}

/// With validation bypassed, undersized quorums observably break
/// atomicity for some seed — the constraints are not pedantry.
#[test]
fn undersized_quorums_break_atomicity() {
    let mut broken = false;
    // Seed 1 is a known violation under these parameters (the in-tree
    // `rand` is xoshiro256++, so seed→workload differs from upstream);
    // scan a window around it so the test stays fast while still
    // *searching*.
    for seed in 0..12u64 {
        let mut ta = ThresholdAssignment::new(3);
        for op in ["Enq", "Deq"] {
            ta.set_initial(op, 1);
        }
        for ev in [
            EventClass::new("Enq", "Ok"),
            EventClass::new("Deq", "Ok"),
            EventClass::new("Deq", "Empty"),
        ] {
            ta.set_final(ev, 1);
        }
        let report = RunBuilder::<TestQueue>::new(3)
            .protocol(queue_protocol(Mode::Hybrid))
            .thresholds(ta)
            .seed(seed)
            .workload(queue_workload(seed, 3, 6))
            .run_unchecked()
            .unwrap();
        if report.check_atomicity(bounds()).is_err() {
            broken = true;
            break;
        }
    }
    assert!(broken, "1-of-3 quorums never produced a non-atomic history");
}

/// One crashed repository out of three: majorities still commit, and the
/// history stays atomic.
#[test]
fn single_crash_is_tolerated_by_majorities() {
    let mut faults = FaultPlan::none();
    faults.crash(0, 0, 1_000_000);
    let report = RunBuilder::<TestQueue>::new(3)
        .protocol(queue_protocol(Mode::Hybrid))
        .faults(faults)
        .seed(5)
        .workload(queue_workload(5, 2, 3))
        .run()
        .unwrap();
    let totals = report.stats();
    assert!(totals.committed > 0);
    assert_eq!(totals.aborted_unavailable, 0);
    report
        .check_atomicity(bounds())
        .expect("atomicity under crash");
}

/// Two crashed repositories out of three: majorities are unreachable —
/// transactions abort as unavailable, and nothing corrupts.
#[test]
fn majority_loss_blocks_but_stays_safe() {
    let mut faults = FaultPlan::none();
    faults.crash(0, 0, 1_000_000);
    faults.crash(1, 0, 1_000_000);
    let report = RunBuilder::<TestQueue>::new(3)
        .protocol(queue_protocol(Mode::Hybrid).op_timeout(50))
        .faults(faults)
        .seed(5)
        .workload(queue_workload(5, 2, 2))
        .run()
        .unwrap();
    let totals = report.stats();
    assert_eq!(totals.committed, 0);
    assert!(totals.aborted_unavailable > 0);
    // Unavailability shows up in telemetry as phase retries and a 100%
    // abort rate.
    let t = report.telemetry();
    assert!(t.phase_retries > 0);
    assert!((t.abort_rate() - 1.0).abs() < 1e-12);
    report
        .check_atomicity(bounds())
        .expect("safety under majority loss");
}

/// A healed partition: operations blocked during the split succeed after.
/// The run's telemetry is serialized like the theory pipeline's
/// `BENCH_*.json` records.
#[test]
fn partition_heals_and_work_resumes() {
    let mut faults = FaultPlan::none();
    // Clients are ids 3.. — split repos {0} ∪ clients from repos {1, 2}
    // for the first 300 ticks.
    faults.partition([1, 2], 0, 300);
    let report = RunBuilder::<TestQueue>::new(3)
        // Enough retry budget that attempts outlive the 300-tick split
        // (in-partition attempts burn on unavailability and on conflicts
        // at the single reachable repository).
        .protocol(queue_protocol(Mode::Hybrid).op_timeout(40).txn_retries(8))
        .faults(faults)
        .seed(8)
        .workload(queue_workload(8, 2, 2))
        .run()
        .unwrap();
    let totals = report.stats();
    assert!(totals.committed > 0, "{totals:?}");
    report
        .check_atomicity(bounds())
        .expect("atomicity across partition");
    // The split cost messages: drops and retries are visible.
    let t = report.telemetry();
    assert!(t.msgs_dropped > 0, "partition dropped nothing?");
    write_bench_telemetry("e2e_partition", t);
}

/// Lossy network: retries mask drops; atomicity holds.
#[test]
fn message_loss_is_masked_by_retries() {
    let report = RunBuilder::<TestQueue>::new(3)
        .protocol(queue_protocol(Mode::Hybrid).op_timeout(60).txn_retries(5))
        .network(NetworkConfig {
            min_delay: 1,
            max_delay: 10,
            drop_prob: 0.1,
            ..NetworkConfig::default()
        })
        .seed(13)
        .workload(queue_workload(13, 2, 3))
        .run()
        .unwrap();
    assert!(report.stats().committed > 0);
    report
        .check_atomicity(bounds())
        .expect("atomicity under loss");
}

/// The register under all three modes, with its own minimal relations.
#[test]
fn register_modes_end_to_end() {
    for mode in [Mode::StaticTs, Mode::Hybrid, Mode::Dynamic2pl] {
        let rel = match mode {
            Mode::StaticTs | Mode::Hybrid => {
                minimal_static_relation::<TestRegister>(bounds()).relation
            }
            Mode::Dynamic2pl => minimal_static_relation::<TestRegister>(bounds())
                .relation
                .union(&minimal_dynamic_relation::<TestRegister>(bounds()).relation),
        };
        let w = generate(
            WorkloadSpec {
                clients: 3,
                txns_per_client: 3,
                ops_per_txn: 2,
                objects: 1,
                seed: 21,
            },
            |rng| {
                if rng.gen_bool(0.5) {
                    Some(rng.gen_range(1..=2))
                } else {
                    None
                }
            },
        );
        let report = RunBuilder::<TestRegister>::new(3)
            .protocol(ProtocolConfig::new(Protocol::new(mode, rel)).txn_retries(5))
            .seed(21)
            .workload(w)
            .run()
            .unwrap();
        assert!(report.stats().committed > 0, "{mode}");
        report
            .check_atomicity(bounds())
            .unwrap_or_else(|o| panic!("{mode}: non-atomic register history {o}"));
    }
}

/// Transaction retry turns conflict aborts into eventual commits.
#[test]
fn retries_recover_conflicted_transactions() {
    let w = generate(
        WorkloadSpec {
            clients: 3,
            txns_per_client: 3,
            ops_per_txn: 2,
            objects: 1,
            seed: 31,
        },
        |rng| {
            if rng.gen_bool(0.5) {
                QInv::Enq(rng.gen_range(1..=2))
            } else {
                QInv::Deq
            }
        },
    );
    let no_retry = RunBuilder::<TestQueue>::new(3)
        .protocol(queue_protocol(Mode::Dynamic2pl))
        .seed(31)
        .workload(w.clone())
        .run()
        .unwrap();
    let with_retry = RunBuilder::<TestQueue>::new(3)
        .protocol(queue_protocol(Mode::Dynamic2pl).txn_retries(4))
        .seed(31)
        .workload(w)
        .run()
        .unwrap();
    assert!(with_retry.stats().committed >= no_retry.stats().committed);
    // Re-runs happened and are counted.
    assert!(with_retry.telemetry().txn_reruns > 0);
    assert_eq!(no_retry.telemetry().txn_reruns, 0);
    with_retry
        .check_atomicity(bounds())
        .expect("atomicity with retries");
}

/// Multiple objects in one transaction: per-object histories are each
/// atomic.
#[test]
fn multi_object_transactions() {
    let w = generate(
        WorkloadSpec {
            clients: 3,
            txns_per_client: 3,
            ops_per_txn: 3,
            objects: 2,
            seed: 41,
        },
        |rng| {
            if rng.gen_bool(0.6) {
                QInv::Enq(rng.gen_range(1..=2))
            } else {
                QInv::Deq
            }
        },
    );
    let report = RunBuilder::<TestQueue>::new(3)
        .protocol(queue_protocol(Mode::Hybrid))
        .seed(41)
        .workload(w)
        .run()
        .unwrap();
    assert_eq!(report.objects().len(), 2);
    report
        .check_atomicity(bounds())
        .expect("multi-object atomicity");
}

/// Ablation: §3.2's *view propagation* (final-quorum writes carry the
/// whole merged view) is what makes transitive dependencies work. With it
/// disabled, the PROM's minimal hybrid assignment — where Reads learn of
/// Writes only through the Seal's written view — returns a stale default.
#[test]
fn view_propagation_ablation_breaks_prom_reads() {
    use quorumcc_adts::prom::{PromInv, PromRes};
    use quorumcc_adts::Prom;

    let n = 5;
    let mk_thresholds = || {
        let mut ta = ThresholdAssignment::new(n);
        ta.set_initial("Read", 1);
        ta.set_initial("Write", 1);
        ta.set_initial("Seal", n);
        ta.set_final(EventClass::new("Seal", "Ok"), n);
        ta.set_final(EventClass::new("Write", "Ok"), 1);
        ta.set_final(EventClass::new("Read", "Disabled"), 1);
        ta
    };
    let w = || {
        vec![vec![
            Transaction {
                ops: vec![(ObjId(0), PromInv::Write(42))],
            },
            Transaction {
                ops: vec![(ObjId(0), PromInv::Seal)],
            },
            Transaction {
                ops: vec![(ObjId(0), PromInv::Read)],
            },
        ]]
    };
    let read_result = |report: &quorumcc_replication::RunReport<Prom>| {
        report
            .history(ObjId(0))
            .entries()
            .iter()
            .find_map(|e| match e.event() {
                Some(ev) if ev.inv == PromInv::Read => Some(ev.res),
                _ => None,
            })
    };

    // With propagation (narrow fan-out: exactly the quorum lands on
    // disk): the read sees the sealed 42 via the Seal's written view.
    let good = RunBuilder::<Prom>::new(n)
        .protocol(ProtocolConfig::new(Protocol::new(
            Mode::Hybrid,
            prom_hybrid_relation(),
        )))
        .thresholds(mk_thresholds())
        .seed(3)
        .tuning(TuningConfig::default().fanout(Fanout::Narrow))
        .workload(w())
        .run()
        .unwrap();
    assert_eq!(read_result(&good), Some(PromRes::Item(42)));
    good.check_atomicity(bounds())
        .expect("propagating run atomic");

    // Without propagation: the read misses the write (its 1-site initial
    // quorum never intersects the write's 1-site final quorum) and the
    // captured history is non-atomic.
    let bad = RunBuilder::<Prom>::new(n)
        .protocol(ProtocolConfig::new(Protocol::new(
            Mode::Hybrid,
            prom_hybrid_relation(),
        )))
        .thresholds(mk_thresholds())
        .seed(3)
        .tuning(
            TuningConfig::default()
                .fanout(Fanout::Narrow)
                .no_view_propagation(),
        )
        .workload(w())
        .run_unchecked()
        .unwrap();
    assert_eq!(
        read_result(&bad),
        Some(PromRes::Item(0)),
        "ablated read should see the stale default"
    );
    assert!(bad.check_atomicity(bounds()).is_err());
}

/// Narrow (preferred-quorum) fan-out preserves the soundness loop: exactly
/// quorum-sized message sets, rotating per request, histories still
/// atomic.
#[test]
fn narrow_fanout_stays_atomic() {
    for mode in [Mode::StaticTs, Mode::Hybrid, Mode::Dynamic2pl] {
        for seed in 0..4u64 {
            // Narrow fan-out detects conflicts later (the preferred sets
            // rotate), so strict 2PL conflict-storms harder; two clients
            // keep the dynamic runs convergent.
            let clients = if mode == Mode::Dynamic2pl { 2 } else { 3 };
            let report = RunBuilder::<TestQueue>::new(3)
                .protocol(queue_protocol(mode).txn_retries(6))
                .tuning(TuningConfig::default().fanout(Fanout::Narrow))
                .seed(seed)
                .workload(queue_workload(seed, clients, 3))
                .run()
                .unwrap();
            assert!(report.stats().committed > 0, "{mode} seed {seed}");
            report
                .check_atomicity(bounds())
                .unwrap_or_else(|o| panic!("{mode} seed {seed}: non-atomic {o}"));
        }
    }
}

/// Narrow fan-out falls back to broadcast on timeout: a crashed preferred
/// replica costs a retry, not the transaction.
#[test]
fn narrow_fanout_fallback_survives_crash() {
    let mut faults = FaultPlan::none();
    faults.crash(0, 0, 1_000_000);
    let report = RunBuilder::<TestQueue>::new(3)
        .protocol(queue_protocol(Mode::Hybrid).op_timeout(40).txn_retries(3))
        .tuning(TuningConfig::default().fanout(Fanout::Narrow))
        .faults(faults)
        .seed(5)
        .workload(queue_workload(5, 2, 3))
        .run()
        .unwrap();
    assert!(report.stats().committed > 0);
    report
        .check_atomicity(bounds())
        .expect("atomic under narrow+crash");
}

/// Anti-entropy heals divergence: with narrow fan-out and tiny final
/// quorums, entries initially land on single repositories; periodic log
/// gossip converges every replica. The healed run's telemetry is
/// serialized like the theory pipeline's `BENCH_*.json` records.
#[test]
fn anti_entropy_converges_replicas() {
    // Enq-only workload with final(Enq/Ok) = 1 so entries start sparse;
    // initial(Deq) = 3 keeps the relation valid.
    let mut ta = ThresholdAssignment::new(3);
    ta.set_initial("Enq", 3);
    ta.set_initial("Deq", 3);
    for ev in [
        EventClass::new("Enq", "Ok"),
        EventClass::new("Deq", "Ok"),
        EventClass::new("Deq", "Empty"),
    ] {
        ta.set_final(ev, 1);
    }
    let workload = || {
        vec![vec![Transaction {
            ops: vec![
                (ObjId(0), QInv::Enq(1)),
                (ObjId(0), QInv::Enq(2)),
                (ObjId(0), QInv::Enq(1)),
            ],
        }]]
    };

    // Without anti-entropy: narrow writes leave replicas diverged.
    let plain = RunBuilder::<TestQueue>::new(3)
        .protocol(queue_protocol(Mode::Hybrid))
        .thresholds(ta.clone())
        .tuning(TuningConfig::default().fanout(Fanout::Narrow))
        .seed(2)
        .workload(workload())
        .run()
        .unwrap();
    let sizes = |r: &quorumcc_replication::RunReport<TestQueue>| {
        r.repo_logs()
            .iter()
            .map(|per| per.first().map(|(_, n)| *n).unwrap_or(0))
            .collect::<Vec<_>>()
    };
    let diverged = sizes(&plain);
    assert!(
        diverged.iter().any(|n| *n != diverged[0]),
        "expected divergence, got {diverged:?}"
    );

    // With anti-entropy and a settling tail, every replica has all entries.
    let healed = RunBuilder::<TestQueue>::new(3)
        .protocol(queue_protocol(Mode::Hybrid))
        .thresholds(ta)
        .tuning(
            TuningConfig::default()
                .fanout(Fanout::Narrow)
                .anti_entropy(25),
        )
        .max_time(3_000)
        .seed(2)
        .workload(workload())
        .run()
        .unwrap();
    let converged = sizes(&healed);
    assert!(
        converged.iter().all(|n| *n == 3),
        "expected full convergence, got {converged:?}"
    );
    healed
        .check_atomicity(bounds())
        .expect("atomic with gossip");
    // Gossip shows up in the telemetry's log-length histogram: every
    // replica at 3 entries.
    let t = healed.telemetry();
    assert_eq!(t.log_lengths.min(), Some(3));
    assert_eq!(t.log_lengths.max(), Some(3));
    write_bench_telemetry("e2e_anti_entropy", t);
}

/// Soak: long randomized runs across every mode, fan-out, and a rotating
/// fault plan — hours of simulated time, every history checked.
/// `cargo test -p quorumcc-replication --test e2e -- --ignored` to run.
#[test]
#[ignore = "long-running soak; run explicitly"]
fn soak_randomized_clusters() {
    for seed in 0..30u64 {
        for mode in [Mode::StaticTs, Mode::Hybrid, Mode::Dynamic2pl] {
            let mut faults = FaultPlan::none();
            if seed % 3 == 1 {
                faults.crash(seed as u32 % 3, 100, 600);
            }
            if seed % 3 == 2 {
                faults.partition([0], 200, 500);
            }
            let fanout = if seed % 2 == 0 {
                Fanout::Broadcast
            } else {
                Fanout::Narrow
            };
            let report = RunBuilder::<TestQueue>::new(3)
                .protocol(
                    queue_protocol(mode)
                        .op_timeout(50)
                        .txn_retries(6)
                        .commit_delay(if seed % 4 == 0 { 20 } else { 0 }),
                )
                .faults(faults)
                .tuning(TuningConfig::default().fanout(fanout))
                .seed(seed)
                .workload(queue_workload(seed, 3, 4))
                .run()
                .unwrap();
            report
                .check_atomicity(bounds())
                .unwrap_or_else(|o| panic!("soak {mode} seed {seed} {fanout:?}: non-atomic {o}"));
        }
    }
}
