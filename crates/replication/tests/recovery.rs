//! Recovery-path property tests (DESIGN §3.17).
//!
//! The frontier-repair mechanism rests on two claims:
//!
//! 1. **Idempotence** — `ResolveAck` tallying is a join in the lattice of
//!    (seq → ack-set) maps: duplicated, reordered, or stale acks can never
//!    move the durable frontier backwards, only forwards. Retransmitting a
//!    `Resolve` (and receiving the extra acks it provokes) is therefore
//!    always safe.
//! 2. **Transparency** — turning the retransmitter on must not change any
//!    commit/abort decision: it only repeats messages the protocol already
//!    tolerates. The same workload pushed through the DES and the
//!    channels backend with frontier repair enabled must produce identical
//!    per-client decision sequences for Queue, PROM, and FlagSet in all
//!    three concurrency-control modes.
//!
//! The first claim is exercised directly against a [`Client`] driver (the
//! frontier is client state; no cluster needed), then end-to-end under a
//! duplicating DES network. The second reuses the equivalence idiom of
//! `backends.rs` with the repair tuning switched on.

use quorumcc_adts::flagset::FlagSetInv;
use quorumcc_adts::prom::PromInv;
use quorumcc_adts::queue::{QueueInv, QueueRes};
use quorumcc_adts::{FlagSet, Prom, Queue};
use quorumcc_core::{minimal_dynamic_relation, minimal_static_relation, DependencyRelation};
use quorumcc_model::spec::ExploreBounds;
use quorumcc_model::{ActionId, Classified, Enumerable};
use quorumcc_quorum::ThresholdAssignment;
use quorumcc_replication::client::Record;
use quorumcc_replication::cluster::{ProtocolConfig, RunBuilder, RunReport};
use quorumcc_replication::protocol::{Mode, Protocol};
use quorumcc_replication::{
    BackendKind, Client, ClientConfig, CollectIo, Fanout, Msg, ObjId, Transaction, TuningConfig,
};
use quorumcc_sim::NetworkConfig;

fn bounds() -> ExploreBounds {
    ExploreBounds {
        depth: 4,
        ..ExploreBounds::default()
    }
}

fn relation<S: Classified + Enumerable>(mode: Mode) -> DependencyRelation {
    match mode {
        Mode::StaticTs | Mode::Hybrid => minimal_static_relation::<S>(bounds()).relation,
        Mode::Dynamic2pl => minimal_static_relation::<S>(bounds())
            .relation
            .union(&minimal_dynamic_relation::<S>(bounds()).relation),
    }
}

/// A standalone client with frontier repair on, addressed as process
/// `me` against repositories `0..repos`.
fn repair_client(me: u32, repos: u32) -> (Client<Queue>, CollectIo<Msg<QueueInv, QueueRes>>) {
    let cfg = ClientConfig {
        protocol: Protocol::new(Mode::Hybrid, DependencyRelation::new()),
        thresholds: ThresholdAssignment::new(repos),
        repos: (0..repos).collect(),
        op_timeout: 100,
        max_phase_retries: 1,
        think_time: 5,
        commit_delay: 0,
        txn_retries: 0,
        propagate_views: true,
        fanout: Fanout::Broadcast,
        delta_shipping: true,
        compact_logs: false,
        weaken_read_quorum: false,
        skip_final_ack: false,
        shards: 1,
        batch: 1,
        batch_window: 0,
        shard_thresholds: Vec::new(),
        status_gc: true,
        resolve_retransmit: Some(50),
    };
    (Client::new(cfg, Vec::new()), CollectIo::new(me, 1))
}

/// Client action ids encode `client * 100_000 + seq`.
fn action(me: u32, seq: u32) -> ActionId {
    ActionId(me * 100_000 + seq)
}

/// Duplicated, reordered, and stale `ResolveAck`s: the durable frontier
/// is monotone throughout and lands exactly where a single clean pass
/// would put it.
#[test]
fn frontier_never_regresses_under_duplicated_reordered_acks() {
    const ME: u32 = 7;
    const SEQS: u32 = 8;
    let (mut client, mut io) = repair_client(ME, 3);
    let mut floor = 0;
    let check = |client: &Client<Queue>, floor: &mut u32| {
        let f = client.durable_frontier_seq();
        assert!(f >= *floor, "frontier regressed: {f} < {floor}");
        *floor = f;
    };
    // Acks arrive newest-sequence-first, each delivered twice, with the
    // repository order rotated per sequence — the worst reordering a
    // lossy, retransmitting transport can produce.
    for seq in (0..SEQS).rev() {
        for r in 0..3u32 {
            let repo = (r + seq) % 3;
            for _ in 0..2 {
                client.handle(
                    &mut io,
                    repo,
                    Msg::ResolveAck {
                        action: action(ME, seq),
                    },
                );
                check(&client, &mut floor);
            }
        }
    }
    assert_eq!(
        client.durable_frontier_seq(),
        SEQS,
        "full prefix is durable"
    );
    // Stale re-deliveries (a retransmitted Resolve provoking fresh acks
    // for long-durable sequences) are ignored, never re-tallied.
    for seq in 0..SEQS {
        for repo in 0..3u32 {
            client.handle(
                &mut io,
                repo,
                Msg::ResolveAck {
                    action: action(ME, seq),
                },
            );
            check(&client, &mut floor);
        }
    }
    assert_eq!(client.durable_frontier_seq(), SEQS);
    // Acks for some *other* client's actions never touch this frontier.
    client.handle(
        &mut io,
        0,
        Msg::ResolveAck {
            action: action(ME + 1, SEQS + 3),
        },
    );
    assert_eq!(client.durable_frontier_seq(), SEQS);
}

/// An incomplete ack set (one repository dark) pins the frontier exactly
/// at the first un-acked sequence; the acks beyond it are tallied, not
/// lost, so the late ack releases the whole prefix at once.
#[test]
fn frontier_waits_for_every_repository_then_jumps() {
    const ME: u32 = 2;
    let (mut client, mut io) = repair_client(ME, 3);
    for seq in 0..5u32 {
        for repo in [0u32, 2] {
            client.handle(
                &mut io,
                repo,
                Msg::ResolveAck {
                    action: action(ME, seq),
                },
            );
        }
    }
    assert_eq!(client.durable_frontier_seq(), 0, "repo 1 never acked");
    for seq in 0..5u32 {
        client.handle(
            &mut io,
            1,
            Msg::ResolveAck {
                action: action(ME, seq),
            },
        );
        assert_eq!(client.durable_frontier_seq(), seq + 1);
    }
}

fn decisions<S: Classified + Enumerable>(report: &RunReport<S>) -> Vec<String> {
    report
        .clients()
        .iter()
        .map(|(_, records, _)| {
            records
                .iter()
                .filter_map(|r| match r {
                    Record::Commit { .. } => Some('C'),
                    Record::Abort { .. } => Some('A'),
                    _ => None,
                })
                .collect()
        })
        .collect()
}

fn private_txns<I: Clone>(obj: u16, txns: &[Vec<I>]) -> Vec<Transaction<I>> {
    txns.iter()
        .map(|ops| Transaction {
            ops: ops.iter().map(|i| (ObjId(obj), i.clone())).collect(),
        })
        .collect()
}

/// Both backends, frontier repair on: decisions must match each other and
/// the workload total (conflict-free, fault-free — retransmission may
/// repeat wire traffic but never changes an outcome).
fn assert_equivalent_under_repair<S: Classified + Enumerable>(
    mode: Mode,
    workload: Vec<Vec<Transaction<S::Inv>>>,
) {
    let total_txns: usize = workload.iter().map(Vec::len).sum();
    let build = |backend| {
        RunBuilder::<S>::new(3)
            .protocol(ProtocolConfig::new(Protocol::new(
                mode,
                relation::<S>(mode),
            )))
            .tuning(
                TuningConfig::default()
                    .scoped_statuses()
                    .status_gc(2)
                    .resolve_retransmit(400),
            )
            .seed(7)
            .workload(workload.clone())
            .backend(backend)
            .run()
            .unwrap_or_else(|e| panic!("{mode:?}/{backend:?} run failed: {e}"))
    };
    let des = build(BackendKind::Des);
    let chan = build(BackendKind::Channels);
    assert_eq!(
        decisions(&des),
        decisions(&chan),
        "{mode:?}: decision sequences diverge under retransmit"
    );
    assert_eq!(des.stats().committed, total_txns, "{mode:?}: DES aborts");
    assert_eq!(
        chan.stats().committed,
        total_txns,
        "{mode:?}: channels aborts"
    );
    // The repair plumbing must actually be live on the deterministic run:
    // statuses reach durability and get collected.
    assert!(
        des.telemetry().statuses_gcd > 0,
        "{mode:?}: status GC never ran on the DES backend"
    );
}

#[test]
fn queue_decisions_match_under_retransmit_in_all_modes() {
    for mode in [Mode::StaticTs, Mode::Hybrid, Mode::Dynamic2pl] {
        let workload: Vec<_> = (0..4u16)
            .map(|c| {
                private_txns(
                    c,
                    &[
                        vec![QueueInv::Enq(1), QueueInv::Enq(2)],
                        vec![QueueInv::Deq, QueueInv::Deq],
                        vec![QueueInv::Enq(1), QueueInv::Deq],
                    ],
                )
            })
            .collect();
        assert_equivalent_under_repair::<Queue>(mode, workload);
    }
}

#[test]
fn prom_decisions_match_under_retransmit_in_all_modes() {
    for mode in [Mode::StaticTs, Mode::Hybrid, Mode::Dynamic2pl] {
        let workload: Vec<_> = (0..4u16)
            .map(|c| {
                private_txns(
                    c,
                    &[
                        vec![PromInv::Write(7)],
                        vec![PromInv::Seal],
                        vec![PromInv::Read],
                    ],
                )
            })
            .collect();
        assert_equivalent_under_repair::<Prom>(mode, workload);
    }
}

#[test]
fn flagset_decisions_match_under_retransmit_in_all_modes() {
    for mode in [Mode::StaticTs, Mode::Hybrid, Mode::Dynamic2pl] {
        let workload: Vec<_> = (0..4u16)
            .map(|c| {
                private_txns(
                    c,
                    &[
                        vec![FlagSetInv::Open],
                        vec![FlagSetInv::Shift(1), FlagSetInv::Shift(2)],
                        vec![FlagSetInv::Close],
                    ],
                )
            })
            .collect();
        assert_equivalent_under_repair::<FlagSet>(mode, workload);
    }
}

/// End-to-end idempotence: a DES network that duplicates a quarter of all
/// messages (acks and retransmitted Resolves included) still passes the
/// safety oracle, commits everything, and the frontier still advances far
/// enough for status GC to collect.
#[test]
fn duplicating_network_keeps_repair_oracle_clean() {
    let workload: Vec<_> = (0..3u16)
        .map(|c| {
            private_txns(
                c,
                &[
                    vec![QueueInv::Enq(1), QueueInv::Enq(2)],
                    vec![QueueInv::Deq],
                    vec![QueueInv::Enq(2), QueueInv::Deq],
                ],
            )
        })
        .collect();
    let total_txns: usize = workload.iter().map(Vec::len).sum();
    let report = RunBuilder::<Queue>::new(3)
        .protocol(ProtocolConfig::new(Protocol::new(
            Mode::Hybrid,
            relation::<Queue>(Mode::Hybrid),
        )))
        .tuning(
            TuningConfig::default()
                .scoped_statuses()
                .status_gc(2)
                .resolve_retransmit(400),
        )
        .network(NetworkConfig {
            dup_prob: 0.25,
            ..NetworkConfig::default()
        })
        .seed(23)
        .workload(workload)
        .backend(BackendKind::Des)
        .run()
        .expect("duplicating DES run");
    let safety = report.safety(bounds());
    assert!(safety.is_ok(), "{safety}");
    assert_eq!(report.stats().committed, total_txns);
    assert!(report.telemetry().statuses_gcd > 0, "status GC never ran");
}
