//! Chaos-layer integration tests: delta shipping under duplication and
//! reordering, volatile-crash recovery, the safety oracle (including its
//! self-test against a deliberately weakened quorum check), and the
//! determinism of chaos sweeps across thread counts.

use quorumcc_core::DependencyRelation;
use quorumcc_model::spec::ExploreBounds;
use quorumcc_model::testtypes::{QInv, QRes, TestQueue};
use quorumcc_model::{ActionId, Classified, Enumerable};
use quorumcc_replication::chaos::{self, ChaosConfig, ChaosPlan};
use quorumcc_replication::cluster::{ProtocolConfig, RunBuilder, TuningConfig};
use quorumcc_replication::messages::Msg;
use quorumcc_replication::protocol::{Mode, Protocol};
use quorumcc_replication::repository::{Durability, Repository};
use quorumcc_replication::types::{entry_of, ActionOutcome, ObjId, ObjectLog, VersionedLog};
use quorumcc_replication::workload::{generate, WorkloadSpec};
use quorumcc_replication::Transaction;
use quorumcc_sim::{Ctx, FaultPlan, NetworkConfig, ProcId, Process, Sim, Timestamp, TraceConfig};
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

fn ts(c: u64, n: u32) -> Timestamp {
    Timestamp {
        counter: c,
        node: n,
    }
}

fn bounds() -> ExploreBounds {
    ExploreBounds {
        depth: 4,
        ..ExploreBounds::default()
    }
}

fn queue_protocol(mode: Mode) -> Protocol {
    Protocol::new(mode, DependencyRelation::full::<TestQueue>())
}

fn queue_workload(seed: u64, clients: usize, txns: usize) -> Vec<Vec<Transaction<QInv>>> {
    generate(
        WorkloadSpec {
            clients,
            txns_per_client: txns,
            ops_per_txn: 2,
            objects: 1,
            seed,
        },
        |rng| {
            if rng.gen_bool(0.5) {
                QInv::Enq(rng.gen_range(0..4))
            } else {
                QInv::Deq
            }
        },
    )
}

/// The delta-shipping property the lossy network leans on: a mirror that
/// receives every reply once, in order, and a mirror that additionally
/// receives stale duplicates at arbitrary later points converge to the
/// same state as the repository log — for every ADT we ship.
fn delta_replies_tolerate_duplication<S: Classified + Enumerable>(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let alphabet = S::invocations();
    let mut repo: VersionedLog<S::Inv, S::Res> = VersionedLog::new();
    let mut clean: VersionedLog<S::Inv, S::Res> = VersionedLog::new();
    let mut noisy: VersionedLog<S::Inv, S::Res> = VersionedLog::new();
    let mut state = S::initial();
    let mut history: Vec<quorumcc_replication::types::LogDelta<S::Inv, S::Res>> = Vec::new();
    let mut frontier = 0u64;
    for step in 0..60u64 {
        let inv = alphabet[rng.gen_range(0..alphabet.len())].clone();
        let (res, next) = S::apply(&state, &inv);
        state = next;
        let stamp = ts(step + 1, 1);
        let action = ActionId(step as u32);
        repo.insert(entry_of::<S>(stamp, action, stamp, inv, res));
        if rng.gen_bool(0.5) {
            repo.resolve(action, ActionOutcome::Committed(ts(step + 1, 9)));
        }
        // The mirror reads with the frontier it last announced — exactly
        // what delta shipping does.
        let d = repo.delta_since(frontier);
        clean.apply_delta(&d);
        noisy.apply_delta(&d);
        frontier = clean.version();
        history.push(d);
        // The lossy network re-delivers stale copies of earlier replies.
        for _ in 0..rng.gen_range(0..3u32) {
            let stale = &history[rng.gen_range(0..history.len())];
            noisy.apply_delta(stale);
        }
    }
    let render = |v: &VersionedLog<S::Inv, S::Res>| {
        format!(
            "v={} entries={:?} statuses={:?}",
            v.version(),
            v.log().entries().collect::<Vec<_>>(),
            v.log().statuses().collect::<Vec<_>>()
        )
    };
    assert_eq!(
        render(&clean),
        render(&noisy),
        "{}: duplicates diverged",
        S::NAME
    );
    assert_eq!(
        format!("{:?}", repo.log().entries().collect::<Vec<_>>()),
        format!("{:?}", clean.log().entries().collect::<Vec<_>>()),
        "{}: mirror lost entries",
        S::NAME
    );
}

/// Entry-less gossip merges are CRDT-safe: merging the same partial views
/// in any order, any number of times, converges to the same log.
fn gossip_merges_commute<S: Classified + Enumerable>(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let alphabet = S::invocations();
    let mut full: ObjectLog<S::Inv, S::Res> = ObjectLog::new();
    let mut parts: Vec<ObjectLog<S::Inv, S::Res>> = (0..4).map(|_| ObjectLog::new()).collect();
    let mut state = S::initial();
    for step in 0..40u64 {
        let inv = alphabet[rng.gen_range(0..alphabet.len())].clone();
        let (res, next) = S::apply(&state, &inv);
        state = next;
        let e = entry_of::<S>(
            ts(step + 1, 1),
            ActionId(step as u32),
            ts(step + 1, 1),
            inv,
            res,
        );
        full.insert(e.clone());
        let k = rng.gen_range(0..parts.len());
        parts[k].insert(e);
        if rng.gen_bool(0.4) {
            let o = ActionOutcome::Committed(ts(step + 1, 9));
            full.resolve(ActionId(step as u32), o);
            parts[k].resolve(ActionId(step as u32), o);
        }
    }
    let render = |l: &ObjectLog<S::Inv, S::Res>| {
        format!(
            "{:?} {:?}",
            l.entries().collect::<Vec<_>>(),
            l.statuses().collect::<Vec<_>>()
        )
    };
    // Two targets merge the parts in different orders, with duplicates.
    let mut forward: ObjectLog<S::Inv, S::Res> = ObjectLog::new();
    for p in &parts {
        forward.merge(p);
    }
    let mut backward: ObjectLog<S::Inv, S::Res> = ObjectLog::new();
    for p in parts.iter().rev() {
        backward.merge(p);
        backward.merge(p); // duplicate delivery
    }
    for p in &parts {
        backward.merge(p); // a second full round, reordered
    }
    assert_eq!(
        render(&forward),
        render(&full),
        "{}: merge lost data",
        S::NAME
    );
    assert_eq!(
        render(&forward),
        render(&backward),
        "{}: merge order mattered",
        S::NAME
    );
}

#[test]
fn delta_shipping_tolerates_duplicated_and_stale_replies_for_every_adt() {
    for seed in [1, 2, 3] {
        delta_replies_tolerate_duplication::<quorumcc_adts::Queue>(seed);
        delta_replies_tolerate_duplication::<quorumcc_adts::Prom>(seed);
        delta_replies_tolerate_duplication::<quorumcc_adts::FlagSet>(seed);
    }
}

#[test]
fn gossip_merges_commute_for_every_adt() {
    for seed in [1, 2, 3] {
        gossip_merges_commute::<quorumcc_adts::Queue>(seed);
        gossip_merges_commute::<quorumcc_adts::Prom>(seed);
        gossip_merges_commute::<quorumcc_adts::FlagSet>(seed);
    }
}

#[test]
fn chaos_networks_keep_every_mode_atomic() {
    // Duplication, reordering, and both at once must never cost safety —
    // in any of the three concurrency-control modes.
    let nets = [
        NetworkConfig {
            min_delay: 1,
            max_delay: 10,
            dup_prob: 0.1,
            ..NetworkConfig::default()
        },
        NetworkConfig {
            min_delay: 1,
            max_delay: 10,
            reorder_window: 15,
            ..NetworkConfig::default()
        },
        NetworkConfig {
            min_delay: 1,
            max_delay: 10,
            drop_prob: 0.03,
            dup_prob: 0.05,
            reorder_window: 8,
        },
    ];
    for mode in [Mode::StaticTs, Mode::Hybrid, Mode::Dynamic2pl] {
        for (i, net) in nets.iter().enumerate() {
            let report = RunBuilder::<TestQueue>::new(3)
                .protocol(ProtocolConfig::new(queue_protocol(mode)).txn_retries(2))
                .network(*net)
                .seed(40 + i as u64)
                .max_time(30_000)
                .workload(queue_workload(40 + i as u64, 2, 3))
                .run()
                .expect("valid configuration");
            let safety = report.safety(bounds());
            assert!(safety.is_ok(), "{mode:?} under net #{i}: {safety}");
            let t = report.telemetry();
            // The chaos knobs actually fired and were counted.
            if net.dup_prob > 0.0 {
                assert!(t.msgs_duplicated > 0, "{mode:?} net #{i}: no dups");
            }
            if net.reorder_window > 0 {
                assert!(t.msgs_reordered > 0, "{mode:?} net #{i}: no reorders");
            }
        }
    }
}

/// A two-repository harness where the probe feeds both repositories an
/// identical acked-write script, repository 1 crashes and recovers, and a
/// late read compares what the two sides still serve.
struct Probe {
    replies: Vec<(ProcId, Msg<QInv, QRes>)>,
}

enum Node {
    Repo(Box<Repository<TestQueue>>),
    Probe(Probe),
}

impl Process<Msg<QInv, QRes>> for Node {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg<QInv, QRes>>) {
        if let Node::Probe(_) = self {
            for target in [0u32, 1] {
                for k in 0..3u64 {
                    let e = entry_of::<TestQueue>(
                        ts(k + 1, 5),
                        ActionId(k as u32),
                        ts(k + 1, 5),
                        QInv::Enq(k as u8),
                        QRes::Ok,
                    );
                    ctx.send(
                        target,
                        Msg::WriteLog {
                            obj: ObjId(0),
                            req: k + 1,
                            log: ObjectLog::new(),
                            entry: Some(e),
                            cfg: 0,
                        },
                    );
                }
                ctx.send(
                    target,
                    Msg::Resolve {
                        action: ActionId(0),
                        outcome: ActionOutcome::Committed(ts(9, 9)),
                        entries: vec![(ObjId(0), 1)],
                    },
                );
            }
            ctx.set_timer(400, 0);
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, Msg<QInv, QRes>>,
        from: ProcId,
        msg: Msg<QInv, QRes>,
    ) {
        match self {
            Node::Repo(r) => r.handle(ctx, from, msg),
            Node::Probe(p) => p.replies.push((from, msg)),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg<QInv, QRes>>, token: u64) {
        match self {
            Node::Repo(r) => r.tick(ctx, token),
            Node::Probe(_) => {
                for target in [0u32, 1] {
                    ctx.send(
                        target,
                        Msg::ReadLog {
                            obj: ObjId(0),
                            req: 100 + u64::from(target),
                            action: ActionId(77),
                            begin_ts: ts(50, 9),
                            op: "Deq",
                            cfg: 0,
                            since: 0,
                            durable: 0,
                        },
                    );
                }
            }
        }
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_, Msg<QInv, QRes>>) {
        if let Node::Repo(r) = self {
            r.on_recover(ctx);
        }
    }
}

fn recovery_replies(durability: Durability) -> Vec<(ProcId, Msg<QInv, QRes>)> {
    let rel = DependencyRelation::full::<TestQueue>();
    let nodes = vec![
        Node::Repo(Box::new(Repository::new(Mode::Hybrid, rel.clone()))),
        Node::Repo(Box::new(
            Repository::new(Mode::Hybrid, rel).with_durability(durability),
        )),
        Node::Probe(Probe {
            replies: Vec::new(),
        }),
    ];
    let mut faults = FaultPlan::none();
    faults.crash(1, 50, 100);
    let mut sim = Sim::new(
        nodes,
        NetworkConfig {
            min_delay: 1,
            max_delay: 1,
            ..NetworkConfig::default()
        },
        faults,
        7,
    );
    sim.run(1_000);
    let Node::Probe(p) = sim.process(2) else {
        panic!("probe expected")
    };
    p.replies.clone()
}

fn log_reply_entries(replies: &[(ProcId, Msg<QInv, QRes>)], from: ProcId) -> String {
    let (_, Msg::LogReply { delta, .. }) = replies
        .iter()
        .find(|(f, m)| *f == from && matches!(m, Msg::LogReply { .. }))
        .expect("log reply")
    else {
        unreachable!()
    };
    format!("{:?} {:?}", delta.entries, delta.statuses)
}

#[test]
fn wal_recovery_restores_exactly_what_a_stable_site_serves() {
    // Same acked script to a Stable repo and a Volatile{wal} repo; the
    // volatile one crashes, loses memory, and replays its write-ahead
    // mirror — a later read must not be able to tell the two apart.
    let replies = recovery_replies(Durability::Volatile { wal: true });
    assert_eq!(
        log_reply_entries(&replies, 0),
        log_reply_entries(&replies, 1)
    );
    assert!(log_reply_entries(&replies, 1).contains("Enq"));
}

#[test]
fn amnesiac_recovery_without_peers_loses_everything() {
    // The same script without a WAL: recovery has nothing to replay and
    // no peers to sync from, so the acked entries are simply gone. (This
    // is the misconfiguration the safety oracle exists to flag.)
    let replies = recovery_replies(Durability::Volatile { wal: false });
    assert!(log_reply_entries(&replies, 0).contains("Enq"));
    assert!(!log_reply_entries(&replies, 1).contains("Enq"));
}

#[test]
fn volatile_wal_cluster_survives_crashes_with_a_clean_oracle() {
    // End-to-end: a WAL-backed volatile repository crashes mid-run,
    // recovers, syncs from peers, and the oracle still passes. The
    // recovery shows up in telemetry and the trace.
    let mut faults = FaultPlan::none();
    faults.crash(0, 200, 700);
    let report = RunBuilder::<TestQueue>::new(3)
        .protocol(ProtocolConfig::new(queue_protocol(Mode::Hybrid)).txn_retries(2))
        .tuning(TuningConfig::default().durability(Durability::Volatile { wal: true }))
        .faults(faults)
        .trace(TraceConfig::unbounded())
        .seed(11)
        .max_time(30_000)
        .workload(queue_workload(11, 3, 6))
        .run()
        .expect("valid configuration");
    let safety = report.safety(bounds());
    assert!(safety.is_ok(), "{safety}");
    let t = report.telemetry();
    assert_eq!(t.recoveries, 1);
    let trace = report.trace().expect("trace captured");
    let kinds: Vec<&str> = trace.events().iter().map(|e| e.action.kind()).collect();
    assert!(kinds.contains(&"recover"), "no recover event");
    // Telemetry and trace agree on full-log fallbacks.
    let traced_fallbacks = kinds.iter().filter(|k| **k == "full-log-fallback").count() as u64;
    assert_eq!(t.full_log_fallbacks, traced_fallbacks);
}

#[test]
fn stale_frontier_past_the_journal_is_served_full_and_counted() {
    // Push enough journaled changes that the earliest fall off the cap,
    // then read with an ancient (but nonzero) frontier: the repository
    // must serve a full transfer, count it, and trace it.
    struct Flood {
        reply: Option<Msg<QInv, QRes>>,
    }
    enum N {
        Repo(Box<Repository<TestQueue>>),
        Flood(Flood),
    }
    impl Process<Msg<QInv, QRes>> for N {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg<QInv, QRes>>) {
            if let N::Flood(_) = self {
                for k in 0..1100u64 {
                    let e = entry_of::<TestQueue>(
                        ts(k + 1, 5),
                        ActionId(k as u32),
                        ts(k + 1, 5),
                        QInv::Enq((k % 250) as u8),
                        QRes::Ok,
                    );
                    ctx.send(
                        0,
                        Msg::WriteLog {
                            obj: ObjId(0),
                            req: k + 1,
                            log: ObjectLog::new(),
                            entry: Some(e),
                            cfg: 0,
                        },
                    );
                }
                ctx.send(
                    0,
                    Msg::ReadLog {
                        obj: ObjId(0),
                        req: 9999,
                        action: ActionId(7777),
                        begin_ts: ts(2000, 9),
                        op: "Deq",
                        cfg: 0,
                        since: 1,
                        durable: 0,
                    },
                );
            }
        }
        fn on_message(
            &mut self,
            ctx: &mut Ctx<'_, Msg<QInv, QRes>>,
            from: ProcId,
            msg: Msg<QInv, QRes>,
        ) {
            match self {
                N::Repo(r) => r.handle(ctx, from, msg),
                N::Flood(f) => {
                    if matches!(msg, Msg::LogReply { .. }) {
                        f.reply = Some(msg);
                    }
                }
            }
        }
    }
    let nodes = vec![
        N::Repo(Box::new(Repository::new(
            Mode::Hybrid,
            DependencyRelation::full::<TestQueue>(),
        ))),
        N::Flood(Flood { reply: None }),
    ];
    let mut sim = Sim::with_trace(
        nodes,
        NetworkConfig {
            min_delay: 1,
            max_delay: 1,
            ..NetworkConfig::default()
        },
        FaultPlan::none(),
        3,
        TraceConfig::unbounded(),
    );
    sim.run(10_000);
    let trace = sim.take_trace().expect("trace");
    let fallbacks = trace
        .events()
        .iter()
        .filter(|e| e.action.kind() == "full-log-fallback")
        .count();
    assert_eq!(fallbacks, 1);
    let N::Repo(r) = sim.process(0) else {
        panic!("repo expected")
    };
    assert_eq!(r.counters().full_log_fallbacks, 1);
    let N::Flood(f) = sim.process(1) else {
        panic!("flood expected")
    };
    let Some(Msg::LogReply { delta, .. }) = &f.reply else {
        panic!("no reply")
    };
    assert!(delta.full, "expected a full transfer");
}

#[test]
fn amnesiac_durability_is_flagged_by_the_oracle() {
    // Volatile without a WAL is deliberately outside the sound sampling
    // space; a crash mid-run must produce a run the oracle rejects
    // (version regression at least — possibly worse).
    let protocol = queue_protocol(Mode::Hybrid);
    let cfg = ChaosConfig::default();
    let mut flagged = false;
    for seed in 0..10u64 {
        let mut plan = ChaosPlan::sample(1000 + seed, 0, &cfg);
        plan.durability = Durability::Volatile { wal: false };
        plan.net = NetworkConfig {
            min_delay: 1,
            max_delay: 10,
            ..NetworkConfig::default()
        };
        plan.faults = FaultPlan::none();
        plan.faults.crash(0, 300, 900);
        let (_, safety) = chaos::run_plan::<TestQueue>(&protocol, &cfg, &plan).expect("valid plan");
        if !safety.is_ok() {
            flagged = true;
            break;
        }
    }
    assert!(flagged, "oracle never flagged amnesiac recovery");
}

#[test]
fn weakened_read_quorum_is_caught_and_shrunk_to_a_minimal_plan() {
    // The oracle's self-test: a client that assembles its initial view
    // from one repository too few breaks the ti + tf > n intersection.
    // Single-op transactions with quiet tails give the staleness nowhere
    // to hide behind aborts; some sampled plan must produce a flagged
    // run, and the greedy shrinker must hand back a minimal plan that
    // still fails and replays from its printed spec.
    let protocol = queue_protocol(Mode::Hybrid);
    let cfg = ChaosConfig {
        weaken_read_quorum: true,
        clients: 2,
        txns_per_client: 2,
        ops_per_txn: 1,
        ..ChaosConfig::default()
    };
    let mut failing: Option<ChaosPlan> = None;
    for idx in 0..100u64 {
        let plan = ChaosPlan::sample(77, idx, &cfg);
        let (_, safety) = chaos::run_plan::<TestQueue>(&protocol, &cfg, &plan).expect("valid plan");
        if !safety.is_ok() {
            failing = Some(plan);
            break;
        }
    }
    let failing = failing.expect("weakened quorum never produced a violation in 100 plans");
    let minimal = chaos::shrink_failure::<TestQueue>(&protocol, &cfg, failing.clone());
    // Still failing, and no larger than what we started from.
    let (_, safety) = chaos::run_plan::<TestQueue>(&protocol, &cfg, &minimal).expect("valid plan");
    assert!(!safety.is_ok(), "shrunk plan no longer fails");
    assert!(minimal.faults.len() <= failing.faults.len());
    // The printed spec replays to the identical verdict.
    let replayed = ChaosPlan::parse(&minimal.encode()).expect("spec parses");
    let (_, replay_safety) =
        chaos::run_plan::<TestQueue>(&protocol, &cfg, &replayed).expect("valid plan");
    assert_eq!(
        format!("{safety}"),
        format!("{replay_safety}"),
        "replay diverged from the shrunk plan"
    );
}

#[test]
fn chaos_sweep_is_identical_at_every_thread_count() {
    let protocol = queue_protocol(Mode::Hybrid);
    let cfg = ChaosConfig {
        txns_per_client: 2,
        ..ChaosConfig::default()
    };
    let render = |outcomes: &[chaos::ChaosOutcome]| {
        outcomes
            .iter()
            .map(|o| {
                format!(
                    "{}|{}|{}|{}|{}|{}|{}|{:?}",
                    o.plan.encode(),
                    o.committed,
                    o.aborted_conflict,
                    o.aborted_unavailable,
                    o.msgs_dropped,
                    o.recoveries,
                    o.full_log_fallbacks,
                    o.violations
                )
            })
            .collect::<Vec<_>>()
    };
    let base = render(&chaos::sweep::<TestQueue>(&protocol, &cfg, 5, 6, 1));
    for threads in [2, 4, 0] {
        let other = render(&chaos::sweep::<TestQueue>(&protocol, &cfg, 5, 6, threads));
        assert_eq!(base, other, "sweep diverged at threads={threads}");
    }
    // And the sweep on a sound tree is violation-free.
    assert!(base.iter().all(|line| line.ends_with("[]")), "{base:?}");
}

/// The acceptance stress run (ignored by default; `scripts/verify.sh`
/// and CI run it explicitly): 600 sampled fault plans over the sound
/// sampling space, every run audited by the oracle, zero violations.
#[test]
#[ignore]
fn chaos_sweep_600_plans_is_violation_free() {
    let protocol = queue_protocol(Mode::Hybrid);
    let cfg = ChaosConfig::default();
    let out = chaos::sweep::<TestQueue>(&protocol, &cfg, 2026, 600, 0);
    let bad: Vec<_> = out.iter().filter(|o| !o.violations.is_empty()).collect();
    let committed: u64 = out.iter().map(|o| o.committed).sum();
    let recov: u64 = out.iter().map(|o| o.recoveries).sum();
    println!(
        "600 plans: committed={committed} recoveries={recov} violations={}",
        bad.len()
    );
    for b in &bad {
        println!("BAD: {} -> {:?}", b.plan.encode(), b.violations);
    }
    assert!(bad.is_empty());
}
