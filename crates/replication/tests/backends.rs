//! DES-vs-real-concurrency backend equivalence.
//!
//! The sans-I/O redesign promises that the protocol core is the *same
//! program* under every host. These tests hold it to that: an identical
//! workload and fault-free configuration pushed through the deterministic
//! simulator ([`BackendKind::Des`]) and the threads-and-channels host
//! ([`BackendKind::Channels`]) must yield identical per-transaction
//! commit/abort decisions for Queue, PROM, and FlagSet in all three
//! concurrency-control modes — and a lossy-network channels run must still
//! pass the full safety oracle over its committed history.
//!
//! Workloads here give each client its own object, so the decision
//! sequence is schedule-independent (no cross-client conflicts): real OS
//! scheduling cannot change the outcome, only its wall-clock timing.

use quorumcc_adts::flagset::FlagSetInv;
use quorumcc_adts::prom::PromInv;
use quorumcc_adts::queue::QueueInv;
use quorumcc_adts::{FlagSet, Prom, Queue};
use quorumcc_core::{minimal_dynamic_relation, minimal_static_relation, DependencyRelation};
use quorumcc_model::spec::ExploreBounds;
use quorumcc_model::{Classified, Enumerable};
use quorumcc_replication::client::Record;
use quorumcc_replication::cluster::{ProtocolConfig, RunBuilder, RunReport};
use quorumcc_replication::error::ReplicationError;
use quorumcc_replication::protocol::{Mode, Protocol};
use quorumcc_replication::{BackendKind, ObjId, Transaction};
use quorumcc_sim::{FaultPlan, NetworkConfig, TraceConfig};

fn bounds() -> ExploreBounds {
    ExploreBounds {
        depth: 4,
        ..ExploreBounds::default()
    }
}

/// A dependency relation valid for `mode` (majority thresholds satisfy any
/// relation, so these only need to be *well-formed*, mirroring `e2e.rs`).
fn relation<S: Classified + Enumerable>(mode: Mode) -> DependencyRelation {
    match mode {
        Mode::StaticTs | Mode::Hybrid => minimal_static_relation::<S>(bounds()).relation,
        Mode::Dynamic2pl => minimal_static_relation::<S>(bounds())
            .relation
            .union(&minimal_dynamic_relation::<S>(bounds()).relation),
    }
}

/// Per-client ordered decision string: `C` for each committed transaction,
/// `A` for each abort, in record order. Timestamps are deliberately
/// ignored — the two backends run on different clocks.
fn decisions<S: Classified + Enumerable>(report: &RunReport<S>) -> Vec<String> {
    report
        .clients()
        .iter()
        .map(|(_, records, _)| {
            records
                .iter()
                .filter_map(|r| match r {
                    Record::Commit { .. } => Some('C'),
                    Record::Abort { .. } => Some('A'),
                    _ => None,
                })
                .collect()
        })
        .collect()
}

fn run_both<S: Classified + Enumerable>(
    mode: Mode,
    workload: Vec<Vec<Transaction<S::Inv>>>,
) -> (RunReport<S>, RunReport<S>) {
    let build = |backend| {
        RunBuilder::<S>::new(3)
            .protocol(ProtocolConfig::new(Protocol::new(
                mode,
                relation::<S>(mode),
            )))
            .seed(7)
            .workload(workload.clone())
            .backend(backend)
            .run()
            .unwrap_or_else(|e| panic!("{mode:?}/{backend:?} run failed: {e}"))
    };
    (build(BackendKind::Des), build(BackendKind::Channels))
}

fn assert_equivalent<S: Classified + Enumerable>(
    mode: Mode,
    workload: Vec<Vec<Transaction<S::Inv>>>,
) {
    let total_txns: usize = workload.iter().map(Vec::len).sum();
    let (des, chan) = run_both::<S>(mode, workload);
    assert_eq!(
        decisions(&des),
        decisions(&chan),
        "{mode:?}: decision sequences diverge between backends"
    );
    // Fault-free and conflict-free: both backends must commit everything.
    assert_eq!(des.stats().committed, total_txns, "{mode:?}: DES aborts");
    assert_eq!(
        chan.stats().committed,
        total_txns,
        "{mode:?}: channels aborts"
    );
}

/// One transaction per `ops` entry, all on this client's private object.
fn private_txns<I: Clone>(obj: u16, txns: &[Vec<I>]) -> Vec<Transaction<I>> {
    txns.iter()
        .map(|ops| Transaction {
            ops: ops.iter().map(|i| (ObjId(obj), i.clone())).collect(),
        })
        .collect()
}

#[test]
fn queue_decisions_match_in_all_modes() {
    for mode in [Mode::StaticTs, Mode::Hybrid, Mode::Dynamic2pl] {
        let workload: Vec<_> = (0..4u16)
            .map(|c| {
                private_txns(
                    c,
                    &[
                        vec![QueueInv::Enq(1), QueueInv::Enq(2)],
                        vec![QueueInv::Deq, QueueInv::Deq],
                        vec![QueueInv::Enq(1), QueueInv::Deq],
                    ],
                )
            })
            .collect();
        assert_equivalent::<Queue>(mode, workload);
    }
}

#[test]
fn prom_decisions_match_in_all_modes() {
    for mode in [Mode::StaticTs, Mode::Hybrid, Mode::Dynamic2pl] {
        let workload: Vec<_> = (0..4u16)
            .map(|c| {
                private_txns(
                    c,
                    &[
                        vec![PromInv::Write(7)],
                        vec![PromInv::Seal],
                        vec![PromInv::Read],
                    ],
                )
            })
            .collect();
        assert_equivalent::<Prom>(mode, workload);
    }
}

#[test]
fn flagset_decisions_match_in_all_modes() {
    for mode in [Mode::StaticTs, Mode::Hybrid, Mode::Dynamic2pl] {
        let workload: Vec<_> = (0..4u16)
            .map(|c| {
                private_txns(
                    c,
                    &[
                        vec![FlagSetInv::Open],
                        vec![FlagSetInv::Shift(1), FlagSetInv::Shift(2)],
                        vec![FlagSetInv::Close],
                    ],
                )
            })
            .collect();
        assert_equivalent::<FlagSet>(mode, workload);
    }
}

/// Real concurrency plus a lossy, duplicating network: whatever histories
/// the channels backend commits must still pass the full safety oracle
/// (atomicity, no lost committed writes, ...) — the paper's guarantees do
/// not depend on the transport being polite.
#[test]
fn channels_lossy_run_is_oracle_clean() {
    let workload: Vec<_> = (0..3u16)
        .map(|c| {
            private_txns(
                c,
                &[
                    vec![QueueInv::Enq(1), QueueInv::Enq(2)],
                    vec![QueueInv::Deq],
                    vec![QueueInv::Enq(2), QueueInv::Deq],
                ],
            )
        })
        .collect();
    let report = RunBuilder::<Queue>::new(3)
        .protocol(ProtocolConfig::new(Protocol::new(
            Mode::Hybrid,
            relation::<Queue>(Mode::Hybrid),
        )))
        .network(NetworkConfig {
            drop_prob: 0.05,
            dup_prob: 0.05,
            ..NetworkConfig::default()
        })
        .seed(21)
        .workload(workload)
        .backend(BackendKind::Channels)
        .run()
        .expect("lossy channels run");
    let safety = report.safety(bounds());
    assert!(safety.is_ok(), "{safety}");
    assert!(report.stats().committed > 0, "nothing committed");
}

/// Scripted *partitions* and trace capture stay DES-only (both are tied
/// to simulated time); scripted crash windows are supported since they
/// map tick-for-tick onto the host's wall clock — the windows here are
/// in the past by the time the drivers spin up, so the run degenerates
/// to fault-free and must still commit.
#[test]
fn channels_backend_rejects_partitions_and_traces_but_runs_crashes() {
    let workload = vec![private_txns(0, &[vec![QueueInv::Enq(1)]])];
    let base = || {
        RunBuilder::<Queue>::new(3)
            .protocol(ProtocolConfig::new(Protocol::new(
                Mode::StaticTs,
                relation::<Queue>(Mode::StaticTs),
            )))
            .workload(workload.clone())
            .backend(BackendKind::Channels)
    };
    let mut plan = FaultPlan::none();
    plan.partition([0], 10, 20);
    let faulted = base().faults(plan).run().unwrap_err();
    assert!(matches!(faulted, ReplicationError::Unsupported(_)));
    let traced = base().trace(TraceConfig::unbounded()).run().unwrap_err();
    assert!(matches!(traced, ReplicationError::Unsupported(_)));
    let mut crashes = FaultPlan::none();
    crashes.crash(0, 10, 20);
    let report = base().faults(crashes).run().expect("crash windows run");
    assert_eq!(report.stats().committed, 1);
}
