//! One top-level error for the workspace.
//!
//! Each crate keeps its own precise error enum ([`ReplicationError`],
//! [`QuorumError`], [`WellFormedError`]) — those are the types the
//! decision procedures and the cluster builder actually return, and
//! their variants carry the paper-level diagnostics (which constraint
//! failed to intersect, which threshold violates the dependency
//! relation). This facade enum exists so callers composing several
//! subsystems can hold one error type and `?` across the boundary:
//!
//! ```
//! use quorumcc::quorum::QuorumError;
//! use quorumcc::Error;
//!
//! fn weighted_coin(p: f64) -> Result<f64, Error> {
//!     if !(0.0..=1.0).contains(&p) {
//!         return Err(QuorumError::BadProbability(p).into());
//!     }
//!     Ok(p)
//! }
//! assert!(matches!(weighted_coin(2.0), Err(Error::Quorum(_))));
//! ```
//!
//! The enum is `#[non_exhaustive]`: future subsystems (reconfiguration
//! planning, wire-format validation) get variants without a breaking
//! release, so downstream `match`es must carry a `_` arm.

use std::error::Error as StdError;
use std::fmt;

use quorumcc_model::WellFormedError;
use quorumcc_quorum::QuorumError;
use quorumcc_replication::ReplicationError;

/// Any error the workspace can produce, unified for callers that
/// compose subsystems (the per-crate enums stay the precise source of
/// truth; this exists so `?` works across subsystem boundaries).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Cluster configuration or run-time replication failure.
    Replication(ReplicationError),
    /// Quorum assignment validation or search failure.
    Quorum(QuorumError),
    /// A behavioral history violated the action lifecycle.
    History(WellFormedError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Replication(e) => write!(f, "replication: {e}"),
            Error::Quorum(e) => write!(f, "quorum: {e}"),
            Error::History(e) => write!(f, "history: {e}"),
        }
    }
}

impl StdError for Error {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            Error::Replication(e) => Some(e),
            Error::Quorum(e) => Some(e),
            Error::History(e) => Some(e),
        }
    }
}

impl From<ReplicationError> for Error {
    fn from(e: ReplicationError) -> Error {
        Error::Replication(e)
    }
}

impl From<QuorumError> for Error {
    fn from(e: QuorumError) -> Error {
        Error::Quorum(e)
    }
}

impl From<WellFormedError> for Error {
    fn from(e: WellFormedError) -> Error {
        Error::History(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn question_mark_converts_each_subsystem_error() {
        fn quorum() -> Result<(), Error> {
            Err(QuorumError::BadProbability(2.0))?
        }
        fn replication() -> Result<(), Error> {
            Err(ReplicationError::MissingProtocol)?
        }
        assert_eq!(
            quorum(),
            Err(Error::Quorum(QuorumError::BadProbability(2.0)))
        );
        assert_eq!(
            replication(),
            Err(Error::Replication(ReplicationError::MissingProtocol))
        );
    }

    #[test]
    fn display_prefixes_the_subsystem() {
        let e = Error::from(ReplicationError::EmptyWorkload);
        assert!(e.to_string().starts_with("replication: "));
        assert!(std::error::Error::source(&e).is_some());
    }
}
