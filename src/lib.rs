//! # quorumcc — typed quorum consensus and atomicity mechanisms
//!
//! A mechanized reproduction of Maurice Herlihy, *"Comparing How Atomicity
//! Mechanisms Support Replication"*, PODC 1985: the Weihl model of atomic
//! typed objects, decision procedures for atomic dependency relations under
//! static, hybrid, and strong dynamic atomicity, quorum assignments and
//! availability analysis, and a full quorum-consensus replication system
//! over a deterministic discrete-event simulator.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`model`] — histories, sequential specifications, atomicity checkers
//! * [`adts`] — the paper's data types (Queue, PROM, FlagSet, DoubleBuffer, …)
//! * [`core`] — dependency relations: computation, verification, theorems
//! * [`quorum`] — quorum assignments, intersection constraints, availability
//! * [`sim`] — deterministic discrete-event simulation substrate
//! * [`replication`] — repositories, front-ends, transactions, CC protocols
//!
//! See `README.md` for a tour and `EXPERIMENTS.md` for the paper-vs-measured
//! record of every table and figure.

#![forbid(unsafe_code)]

pub use quorumcc_adts as adts;
pub use quorumcc_core as core;
pub use quorumcc_model as model;
pub use quorumcc_quorum as quorum;
pub use quorumcc_replication as replication;
pub use quorumcc_sim as sim;

/// One-stop imports for driving replicated runs.
///
/// `use quorumcc::prelude::*;` brings in everything needed to configure
/// a cluster with [`RunBuilder`](prelude::RunBuilder), inspect the
/// resulting [`RunReport`](prelude::RunReport) and
/// [`RunTelemetry`](prelude::RunTelemetry), and check captured histories
/// against the paper's atomicity properties:
///
/// ```
/// use quorumcc::prelude::*;
/// use quorumcc::model::testtypes::{QInv, TestQueue};
///
/// let report = RunBuilder::<TestQueue>::new(3)
///     .protocol(ProtocolConfig::new(Protocol::new(
///         Mode::Hybrid,
///         quorumcc::core::DependencyRelation::full::<TestQueue>(),
///     )))
///     .workload(vec![vec![Transaction {
///         ops: vec![(ObjId(0), QInv::Enq(1))],
///     }]])
///     .run()
///     .unwrap();
/// assert_eq!(report.stats().committed, 1);
/// ```
pub mod prelude {
    pub use quorumcc_model::spec::ExploreBounds;
    pub use quorumcc_quorum::ThresholdAssignment;
    pub use quorumcc_replication::{
        ClientMetrics, ClientStats, Config, ConfigState, Fanout, LogicalHistogram, Mode, ObjId,
        Protocol, ProtocolConfig, ReconfigPolicy, ReconfigRecord, ReplicationError, RunBuilder,
        RunReport, RunTelemetry, Transaction, TuningConfig,
    };
    pub use quorumcc_sim::trace::{TraceAction, TraceBuffer, TraceConfig, TraceEvent};
    pub use quorumcc_sim::{FaultPlan, NetworkConfig, ProcId, SimTime, Timestamp};
}
