//! # quorumcc — typed quorum consensus and atomicity mechanisms
//!
//! A mechanized reproduction of Maurice Herlihy, *"Comparing How Atomicity
//! Mechanisms Support Replication"*, PODC 1985: the Weihl model of atomic
//! typed objects, decision procedures for atomic dependency relations under
//! static, hybrid, and strong dynamic atomicity, quorum assignments and
//! availability analysis, and a full quorum-consensus replication system
//! over a deterministic discrete-event simulator.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`model`] — histories, sequential specifications, atomicity checkers
//! * [`adts`] — the paper's data types (Queue, PROM, FlagSet, DoubleBuffer, …)
//! * [`core`] — dependency relations: computation, verification, theorems
//! * [`quorum`] — quorum assignments, intersection constraints, availability
//! * [`sim`] — deterministic discrete-event simulation substrate
//! * [`replication`] — repositories, front-ends, transactions, CC protocols,
//!   and the sans-I/O protocol drivers both backends host
//! * [`net`] — the real-socket backend: wire codec, TCP framing, and the
//!   `exp_load` harness (`qcc load`)
//!
//! See `README.md` for a tour and `EXPERIMENTS.md` for the paper-vs-measured
//! record of every table and figure.

#![forbid(unsafe_code)]

mod error;

pub use error::Error;
pub use quorumcc_adts as adts;
pub use quorumcc_core as core;
pub use quorumcc_model as model;
pub use quorumcc_net as net;
pub use quorumcc_quorum as quorum;
pub use quorumcc_replication as replication;
pub use quorumcc_sim as sim;

/// One-stop imports for driving replicated runs.
///
/// `use quorumcc::prelude::*;` brings in everything needed to configure
/// a cluster with [`RunBuilder`](prelude::RunBuilder) — including the
/// sans-I/O surface ([`Driver`](prelude::Driver),
/// [`Input`](prelude::Input)/[`Output`](prelude::Output),
/// [`BackendKind`](prelude::BackendKind) for `RunBuilder::backend`, and
/// the [`run_load`](prelude::run_load) socket harness) — inspect the
/// resulting [`RunReport`](prelude::RunReport) and
/// [`RunTelemetry`](prelude::RunTelemetry), and check captured histories
/// against the paper's atomicity properties:
///
/// ```
/// use quorumcc::prelude::*;
/// use quorumcc::model::testtypes::{QInv, TestQueue};
///
/// let report = RunBuilder::<TestQueue>::new(3)
///     .protocol(ProtocolConfig::new(Protocol::new(
///         Mode::Hybrid,
///         quorumcc::core::DependencyRelation::full::<TestQueue>(),
///     )))
///     .workload(vec![vec![Transaction {
///         ops: vec![(ObjId(0), QInv::Enq(1))],
///     }]])
///     .run()
///     .unwrap();
/// assert_eq!(report.stats().committed, 1);
/// ```
pub mod prelude {
    pub use crate::error::Error;
    pub use quorumcc_model::spec::ExploreBounds;
    pub use quorumcc_net::{run_load, LoadBackend, LoadConfig, LoadReport, Wire};
    pub use quorumcc_quorum::ThresholdAssignment;
    pub use quorumcc_replication::{
        BackendKind, ClientMetrics, ClientStats, CollectIo, Config, ConfigState, DesAdapter,
        Driver, Fanout, Input, Io, LogicalHistogram, Mode, Msg, ObjId, Output, Protocol,
        ProtocolConfig, ReconfigPolicy, ReconfigRecord, ReplicationError, RunBuilder, RunReport,
        RunTelemetry, Transaction, TuningConfig,
    };
    pub use quorumcc_sim::trace::{TraceAction, TraceBuffer, TraceConfig, TraceEvent};
    pub use quorumcc_sim::{FaultPlan, NetworkConfig, ProcId, SimTime, Timestamp};
}
