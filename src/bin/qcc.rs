//! `qcc` — the quorumcc command line.
//!
//! ```text
//! qcc relations <type>                 dependency relations + comparison
//! qcc certificates                     re-check the paper's theorems
//! qcc quorums <type> [opts]            optimal threshold assignment
//! qcc frontier <type> [opts]           Pareto frontier of quorum sizes
//! qcc simulate <type> [opts]           run a replicated cluster
//! qcc trace <type> [opts]              capture + filter a run trace
//! qcc reconfig <type> [opts]           replan quorums after a site loss
//! qcc chaos <type> [opts]              fuzz fault plans + safety oracle
//! qcc explore <type> [opts]            exhaust all interleavings (model check)
//! qcc types                            list available data types
//! ```
//!
//! Types: queue, prom, flagset, doublebuffer, register, counter, account,
//! gset, directory, appendlog.

use quorumcc::core::{battery, certificates, minimal_dynamic_relation, minimal_static_relation};
use quorumcc::model::{Classified, Enumerable};
use quorumcc::prelude::*;
use quorumcc::quorum::{availability, pareto, planner, threshold, SiteSet};
use quorumcc::replication::chaos::{self, ChaosConfig, ChaosPlan};
use quorumcc::replication::explore::{self as rexplore, ExploreSetup, ExploreSpec, Knob};
use quorumcc::replication::workload::{generate, WorkloadSpec};
use quorumcc::sim::explore::ExploreConfig;
use rand::Rng;
use std::collections::HashMap;
use std::process::ExitCode;

const TYPES: &[&str] = &[
    "queue",
    "prom",
    "flagset",
    "doublebuffer",
    "register",
    "counter",
    "account",
    "gset",
    "directory",
    "appendlog",
];

fn bounds() -> ExploreBounds {
    ExploreBounds {
        depth: 4,
        max_states: 4_096,
        budget: 5_000_000,
    }
}

/// Parsed `--key value` options.
struct Opts(HashMap<String, String>);

impl Opts {
    fn parse(args: &[String]) -> Result<Opts, String> {
        let mut map = HashMap::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument: {a}"));
            };
            let Some(v) = it.next() else {
                return Err(format!("--{key} needs a value"));
            };
            map.insert(key.to_string(), v.clone());
        }
        Ok(Opts(map))
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.0.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for --{key}: {v}")),
        }
    }

    fn str(&self, key: &str, default: &str) -> String {
        self.0
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Rejects options the subcommand does not understand. A typo'd or
    /// stale flag (say `--batch` on `qcc quorums`) is an error, not a
    /// silent ignore — silently dropping a tuning knob would report
    /// numbers for a configuration the user never asked for.
    fn expect_keys(&self, allowed: &[&str]) -> Result<(), String> {
        let mut unknown: Vec<&str> = self
            .0
            .keys()
            .map(String::as_str)
            .filter(|k| !allowed.contains(k))
            .collect();
        if unknown.is_empty() {
            return Ok(());
        }
        unknown.sort_unstable();
        let s = if unknown.len() == 1 { "" } else { "s" };
        Err(format!(
            "unknown option{s} for this command: --{}",
            unknown.join(" --")
        ))
    }
}

/// Runs `f` with the sequential type named by `name`.
macro_rules! with_type {
    ($name:expr, $f:ident, $($arg:expr),*) => {
        match $name {
            "queue" => $f::<quorumcc_adts::Queue>($($arg),*),
            "prom" => $f::<quorumcc_adts::Prom>($($arg),*),
            "flagset" => $f::<quorumcc_adts::FlagSet>($($arg),*),
            "doublebuffer" => $f::<quorumcc_adts::DoubleBuffer>($($arg),*),
            "register" => $f::<quorumcc_adts::Register>($($arg),*),
            "counter" => $f::<quorumcc_adts::Counter>($($arg),*),
            "account" => $f::<quorumcc_adts::Account>($($arg),*),
            "gset" => $f::<quorumcc_adts::GSet>($($arg),*),
            "directory" => $f::<quorumcc_adts::Directory>($($arg),*),
            "appendlog" => $f::<quorumcc_adts::AppendLog>($($arg),*),
            other => Err(format!("unknown type: {other} (try `qcc types`)")),
        }
    };
}

fn relation_for<S: Enumerable + Classified>(
    which: &str,
) -> Result<quorumcc::core::DependencyRelation, String> {
    match which {
        "static" | "hybrid" => Ok(minimal_static_relation::<S>(bounds()).relation),
        "dynamic" => Ok(minimal_static_relation::<S>(bounds())
            .relation
            .union(&minimal_dynamic_relation::<S>(bounds()).relation)),
        other => Err(format!("unknown relation/mode: {other}")),
    }
}

fn cmd_relations<S: Enumerable + Classified>(_opts: &Opts) -> Result<(), String> {
    let report = battery::report::<S>(bounds());
    print!("{report}");
    Ok(())
}

fn cmd_quorums<S: Enumerable + Classified>(opts: &Opts) -> Result<(), String> {
    let n: u32 = opts.get("sites", 5u32)?;
    let which = opts.str("relation", "static");
    let rel = relation_for::<S>(&which)?;
    let ops = S::op_classes();
    let evs = S::event_classes();
    let priority_raw = opts.str("priority", "");
    let priority: Vec<&'static str> = ops
        .iter()
        .filter(|op| {
            priority_raw
                .split(',')
                .any(|p| p.trim().eq_ignore_ascii_case(op))
        })
        .copied()
        .collect();
    let ta = threshold::optimize(&rel, n, &ops, &evs, &priority).map_err(|e| e.to_string())?;
    println!("relation ({which}):");
    for line in rel.table().lines() {
        println!("  {line}");
    }
    println!("\noptimal thresholds over {n} sites:");
    print!("{ta}");
    println!("\neffective quorum sizes and availability (p = 0.9):");
    for op in &ops {
        let size = ta.op_size_worst(op, &evs);
        let avail =
            availability::op_availability_worst(&ta, op, &evs, 0.9).map_err(|e| e.to_string())?;
        println!("  {op:>12}: {size} of {n}   availability {avail:.6}");
    }
    Ok(())
}

fn cmd_frontier<S: Enumerable + Classified>(opts: &Opts) -> Result<(), String> {
    let n: u32 = opts.get("sites", 5u32)?;
    let which = opts.str("relation", "static");
    let rel = relation_for::<S>(&which)?;
    let ops = S::op_classes();
    let evs = S::event_classes();
    let f = pareto::frontier(&rel, n, &ops, &evs);
    println!(
        "Pareto frontier of {:?} quorum sizes over {n} sites ({which}):",
        ops
    );
    for p in f {
        println!("  {p:?}");
    }
    Ok(())
}

/// `qcc reconfig <type>`: the planner's view of a site loss. Plans the
/// availability-optimal threshold assignment before the fault (over all
/// sites) and after it (over the survivors), and reports the change —
/// the command-line face of `ReconfigPolicy::Reactive`.
fn cmd_reconfig<S: Enumerable + Classified>(opts: &Opts) -> Result<(), String> {
    let n: u32 = opts.get("sites", 5u32)?;
    if n == 0 || n > 16 {
        return Err(format!("--sites must be in 1..=16, got {n}"));
    }
    let which = opts.str("relation", "hybrid");
    let rel = relation_for::<S>(&which)?;
    let ops = S::op_classes();
    let evs = S::event_classes();

    // --lost 4 or --lost 2,4: sites removed from the membership.
    let lost_raw = opts.str("lost", "");
    let mut lost: Vec<u8> = Vec::new();
    for part in lost_raw.split(',').filter(|p| !p.trim().is_empty()) {
        let id: u8 = part
            .trim()
            .parse()
            .map_err(|_| format!("bad value for --lost: {part}"))?;
        if u32::from(id) >= n {
            return Err(format!("--lost names site {id}, but --sites is {n}"));
        }
        lost.push(id);
    }
    if lost.is_empty() {
        lost.push((n - 1) as u8);
    }

    // --up 0.9 (homogeneous) applied to every surviving site.
    let p: f64 = opts.get("up", 0.9f64)?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("--up must be a probability, got {p}"));
    }
    let up: Vec<f64> = (0..n)
        .map(|s| if lost.contains(&(s as u8)) { 0.0 } else { p })
        .collect();

    let priority_raw = opts.str("priority", "");
    let priority: Vec<&'static str> = ops
        .iter()
        .filter(|op| {
            priority_raw
                .split(',')
                .any(|pr| pr.trim().eq_ignore_ascii_case(op))
        })
        .copied()
        .collect();

    let before = planner::plan(
        &rel,
        SiteSet::all(n as usize),
        &vec![p; n as usize],
        &ops,
        &evs,
        &priority,
    )
    .map_err(|e| e.to_string())?;
    let after = planner::replan(
        &rel,
        SiteSet::all(n as usize),
        SiteSet::from_ids(lost.iter().copied()),
        &up,
        &ops,
        &evs,
        &priority,
    )
    .map_err(|e| e.to_string())?;

    println!("relation ({which}), {n} sites, p(up) = {p}");
    println!("\nbefore the fault:");
    for line in before.to_string().lines() {
        println!("  {line}");
    }
    println!(
        "\nafter losing {}:",
        SiteSet::from_ids(lost.iter().copied())
    );
    for line in after.to_string().lines() {
        println!("  {line}");
    }
    println!("\nreplanned quorum sizes (worst case over response classes):");
    for op in &ops {
        let b = before.thresholds.op_size_worst(op, &evs);
        let a = after.thresholds.op_size_worst(op, &evs);
        let ba = before.availability_of(op).unwrap_or(0.0);
        let aa = after.availability_of(op).unwrap_or(0.0);
        println!(
            "  {op:>12}: {b} of {n} -> {a} of {}   availability {ba:.6} -> {aa:.6}",
            after.members.len()
        );
    }
    Ok(())
}

/// Builds the `RunBuilder` shared by `simulate` and `trace` from the
/// common command-line options.
fn builder_from_opts<S: Enumerable + Classified>(opts: &Opts) -> Result<RunBuilder<S>, String> {
    let mode = match opts.str("mode", "hybrid").as_str() {
        "static" => Mode::StaticTs,
        "hybrid" => Mode::Hybrid,
        "dynamic" => Mode::Dynamic2pl,
        other => return Err(format!("unknown mode: {other}")),
    };
    let rel = relation_for::<S>(match mode {
        Mode::Dynamic2pl => "dynamic",
        _ => "static",
    })?;
    let spec = WorkloadSpec {
        clients: opts.get("clients", 3usize)?,
        txns_per_client: opts.get("txns", 4usize)?,
        ops_per_txn: opts.get("ops", 2usize)?,
        objects: opts.get("objects", 1u16)?,
        seed: opts.get("seed", 0u64)?,
    };
    let alphabet = S::invocations();
    let workload = generate(spec, |rng| {
        alphabet[rng.gen_range(0..alphabet.len())].clone()
    });
    // --compact-logs true folds resolved prefixes into checkpoints;
    // --delta false ships full logs in every LogReply (the ablation).
    let mut tuning = TuningConfig::default();
    if opts.get("compact-logs", false)? {
        tuning = tuning.compact_logs();
    }
    if !opts.get("delta", true)? {
        tuning = tuning.full_log_shipping();
    }
    // The throughput engine: --shards N partitions the object space into
    // independently-quorumed shards, --batch B coalesces up to B payloads
    // per destination into one envelope (and sets the pipeline depth),
    // --batch-window W holds under-filled envelopes up to W ticks.
    let shards: u16 = opts.get("shards", 1u16)?;
    if shards == 0 {
        return Err("--shards must be at least 1".to_string());
    }
    let batch: u32 = opts.get("batch", 1u32)?;
    if batch == 0 {
        return Err("--batch must be at least 1".to_string());
    }
    tuning = tuning
        .shards(shards)
        .batch(batch)
        .batch_window(opts.get("batch-window", 0)?);
    Ok(RunBuilder::<S>::new(opts.get("sites", 3u32)?)
        .protocol(
            ProtocolConfig::new(Protocol::new(mode, rel)).txn_retries(opts.get("retries", 3u32)?),
        )
        .tuning(tuning)
        .seed(spec.seed)
        .workload(workload))
}

fn cmd_simulate<S: Enumerable + Classified>(opts: &Opts) -> Result<(), String> {
    let report = builder_from_opts::<S>(opts)?
        .run()
        .map_err(|e| e.to_string())?;
    let t = report.stats();
    println!(
        "mode {}: committed {} / conflict aborts {} / unavailable {} / ops {}",
        report.protocol().mode,
        t.committed,
        t.aborted_conflict,
        t.aborted_unavailable,
        t.ops_completed
    );
    let s = report.sim_stats();
    println!(
        "messages sent {} delivered {} dropped {}",
        s.sent, s.delivered, s.dropped
    );
    let tel = report.telemetry();
    println!(
        "log entries shipped {} ({:.2}/op)",
        tel.log_entries_shipped,
        tel.entries_shipped_per_op()
    );
    match report.check_atomicity(bounds()) {
        Ok(()) => println!("atomicity check: OK"),
        Err(o) => return Err(format!("atomicity VIOLATION on {o}")),
    }
    Ok(())
}

fn cmd_trace<S: Enumerable + Classified>(opts: &Opts) -> Result<(), String> {
    let report = builder_from_opts::<S>(opts)?
        .trace(TraceConfig::unbounded())
        .run()
        .map_err(|e| e.to_string())?;
    let trace = report.trace().expect("tracing was enabled");

    // Filters: --obj N, --site N, --action kind, --from T, --until T.
    let f_obj: Option<u64> = match opts.0.get("obj") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| format!("bad value for --obj: {v}"))?),
    };
    let f_site: Option<u32> = match opts.0.get("site") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("bad value for --site: {v}"))?,
        ),
    };
    let f_action = opts.0.get("action").cloned();
    let f_from: SimTime = opts.get("from", 0)?;
    let f_until: SimTime = opts.get("until", SimTime::MAX)?;
    let limit: usize = opts.get("limit", usize::MAX)?;

    let selected: Vec<&TraceEvent> = trace
        .events()
        .iter()
        .filter(|e| e.t >= f_from && e.t <= f_until)
        .filter(|e| f_site.is_none_or(|s| e.site == s))
        .filter(|e| f_obj.is_none_or(|o| e.action.obj() == Some(o)))
        .filter(|e| {
            f_action
                .as_deref()
                .is_none_or(|kinds| kinds.split(',').any(|k| k.trim() == e.action.kind()))
        })
        .collect();

    if trace.overwritten() > 0 {
        println!(
            "# ring buffer overwrote {} earlier events",
            trace.overwritten()
        );
    }
    for e in selected.iter().take(limit) {
        println!("{e}");
    }
    if selected.len() > limit {
        println!("# ... {} more (raise --limit)", selected.len() - limit);
    }
    println!(
        "# {} of {} events matched",
        selected.len(),
        trace.events().len()
    );

    if let Some(path) = opts.0.get("save") {
        std::fs::write(path, trace.render()).map_err(|e| format!("--save {path}: {e}"))?;
        println!("# full trace saved to {path}");
    }

    // Derived per-op latency and round-trip summaries, from telemetry.
    let t = report.telemetry();
    println!("\nlatency summaries (logical ticks):");
    for (name, h) in [
        ("op latency", &t.op_latency),
        ("initial-quorum rtt", &t.initial_rt),
        ("final-quorum rtt", &t.final_rt),
    ] {
        println!("  {name:>18}: {h}");
    }
    println!(
        "counters: committed {} aborted(conflict) {} aborted(unavail) {} \
         phase-retries {} txn-reruns {} msgs/op {:.2}",
        t.committed,
        t.aborted_conflict,
        t.aborted_unavailable,
        t.phase_retries,
        t.txn_reruns,
        t.messages_per_op()
    );
    Ok(())
}

/// Resolves a mode name into the protocol used by `chaos` and `explore`
/// (the relation is the minimal one the mode needs, exactly as in
/// `builder_from_opts`).
fn protocol_from_mode<S: Enumerable + Classified>(mode_s: &str) -> Result<Protocol, String> {
    let mode = match mode_s {
        "static" => Mode::StaticTs,
        "hybrid" => Mode::Hybrid,
        "dynamic" => Mode::Dynamic2pl,
        other => return Err(format!("unknown mode: {other}")),
    };
    let rel = relation_for::<S>(match mode {
        Mode::Dynamic2pl => "dynamic",
        _ => "static",
    })?;
    Ok(Protocol::new(mode, rel))
}

fn protocol_from_opts<S: Enumerable + Classified>(opts: &Opts) -> Result<Protocol, String> {
    protocol_from_mode::<S>(&opts.str("mode", "hybrid"))
}

/// `qcc chaos <type>`: the deterministic fuzz driver. Samples `--runs`
/// fault plans (network profile × crash/partition schedule × durability ×
/// tuning) from `--seed`, runs each over the worker pool, audits every
/// run with the safety oracle, and prints a per-profile table. On a
/// violation it greedily shrinks the first failing plan to a locally
/// minimal reproducer and prints the exact replay command. `--replay
/// SPEC` re-runs one encoded plan instead.
fn cmd_chaos<S: Enumerable + Classified>(ty: &str, opts: &Opts) -> Result<(), String> {
    let protocol = protocol_from_opts::<S>(opts)?;
    let shards: u16 = opts.get("shards", 1u16)?;
    if shards == 0 {
        return Err("--shards must be at least 1".to_string());
    }
    let batch: u32 = opts.get("batch", 1u32)?;
    if batch == 0 {
        return Err("--batch must be at least 1".to_string());
    }
    let cfg = ChaosConfig {
        n_sites: opts.get("sites", 3u32)?,
        clients: opts.get("clients", 3usize)?,
        txns_per_client: opts.get("txns", 3usize)?,
        ops_per_txn: opts.get("ops", 2usize)?,
        objects: opts.get("objects", 1u16)?,
        shards,
        batch,
        // Deliberately undocumented: inject a planted bug so the
        // oracle's own detection path can be exercised.
        weaken_read_quorum: opts.get("unsound-weaken-read-quorum", false)?,
        skip_final_ack: opts.get("unsound-skip-final-ack", false)?,
        ..ChaosConfig::default()
    };

    // --replay SPEC: run exactly one encoded plan and show its verdict.
    if let Some(spec) = opts.0.get("replay") {
        let plan = ChaosPlan::parse(spec)?;
        let (report, safety) =
            chaos::run_plan::<S>(&protocol, &cfg, &plan).map_err(|e| e.to_string())?;
        let t = report.stats();
        println!("replaying {}", plan.encode());
        println!(
            "committed {} / conflict aborts {} / unavailable {} / recoveries {}",
            t.committed,
            t.aborted_conflict,
            t.aborted_unavailable,
            report.telemetry().recoveries
        );
        println!("{safety}");
        if safety.is_ok() {
            return Ok(());
        }
        return Err("replayed plan violates safety".to_string());
    }

    let seed: u64 = opts.get("seed", 0u64)?;
    let runs: u64 = opts.get("runs", 200u64)?;
    let threads: usize = opts.get("threads", 0usize)?;
    let outcomes = chaos::sweep::<S>(&protocol, &cfg, seed, runs, threads);

    println!(
        "chaos sweep: {} plans from seed {seed} ({} mode, {} sites)",
        outcomes.len(),
        protocol.mode,
        cfg.n_sites
    );
    println!(
        "{:>8} {:>5} {:>9} {:>7} {:>8} {:>7} {:>7} {:>7} {:>6} {:>9} {:>10}",
        "profile",
        "runs",
        "committed",
        "aborts",
        "abort%",
        "drops",
        "dups",
        "reord",
        "recov",
        "fallbacks",
        "violations"
    );
    for p in chaos::aggregate(&outcomes) {
        println!(
            "{:>8} {:>5} {:>9} {:>7} {:>8.4} {:>7} {:>7} {:>7} {:>6} {:>9} {:>10}",
            p.profile,
            p.runs,
            p.committed,
            p.aborted_conflict + p.aborted_unavailable,
            p.abort_rate(),
            p.msgs_dropped,
            p.msgs_duplicated,
            p.msgs_reordered,
            p.recoveries,
            p.full_log_fallbacks,
            p.violations
        );
    }

    let Some(failing) = outcomes.iter().find(|o| !o.violations.is_empty()) else {
        println!("safety oracle: OK on all {} runs", outcomes.len());
        return Ok(());
    };
    println!("\nsafety VIOLATION in plan {}", failing.plan.encode());
    for v in &failing.violations {
        println!("  - {v}");
    }
    println!("shrinking to a minimal reproducing plan ...");
    let minimal = chaos::shrink_failure::<S>(&protocol, &cfg, failing.plan.clone());
    println!("minimal plan: {}", minimal.encode());
    let mut unsound = String::new();
    if cfg.weaken_read_quorum {
        unsound.push_str(" --unsound-weaken-read-quorum true");
    }
    if cfg.skip_final_ack {
        unsound.push_str(" --unsound-skip-final-ack true");
    }
    println!(
        "replay with: qcc chaos {ty} --mode {} --sites {} --clients {} --txns {} --ops {}{unsound} --replay '{}'",
        opts.str("mode", "hybrid"),
        cfg.n_sites,
        cfg.clients,
        cfg.txns_per_client,
        cfg.ops_per_txn,
        minimal.encode()
    );
    Err(format!(
        "{} of {} plans violated safety",
        outcomes.iter().filter(|o| !o.violations.is_empty()).count(),
        outcomes.len()
    ))
}

/// `qcc explore <type>`: the exhaustive interleaving model checker.
/// Enumerates every enabled-event schedule (message deliveries, and —
/// with `--drops`/`--crashes` budgets — message drops and crash points)
/// of a small seeded shape, depth-first with iterative deepening and
/// sleep-set partial-order reduction, auditing every branch with the
/// safety oracle. A violation is reported as a minimal-depth witness
/// spec (same `key=value;` codec as the chaos plans) that `--replay
/// SPEC` re-executes step for step.
fn cmd_explore<S: Enumerable + Classified + Clone + std::fmt::Debug>(
    ty: &str,
    opts: &Opts,
) -> Result<(), String> {
    // --replay SPEC is self-contained: the spec carries the whole shape,
    // so any other shape option alongside it would be silently ignored —
    // reject the combination instead.
    if let Some(raw) = opts.0.get("replay") {
        if opts.0.len() > 1 {
            return Err("--replay takes no other options (the spec carries the shape)".to_string());
        }
        let spec = ExploreSpec::parse(raw)?;
        let protocol = protocol_from_mode::<S>(&spec.mode)?;
        let r = rexplore::replay_setup::<S>(&protocol, &spec.setup, &spec.sched)
            .map_err(|e| e.to_string())?;
        println!("replaying {spec}");
        for step in &r.steps {
            println!("  {step}");
        }
        return match r.verdict {
            None => {
                println!("safety oracle: OK on the replayed schedule");
                Ok(())
            }
            Some(v) => {
                println!("safety VIOLATION: {v}");
                Err("replayed schedule violates safety".to_string())
            }
        };
    }

    let mode_s = opts.str("mode", "hybrid");
    let protocol = protocol_from_mode::<S>(&mode_s)?;
    let knob = match (
        opts.get("unsound-weaken-read-quorum", false)?,
        opts.get("unsound-skip-final-ack", false)?,
    ) {
        (false, false) => Knob::None,
        (true, false) => Knob::WeakenReadQuorum,
        (false, true) => Knob::SkipFinalAck,
        (true, true) => return Err("at most one planted bug per exploration".to_string()),
    };
    let setup = ExploreSetup {
        sites: opts.get("sites", 2u32)?,
        clients: opts.get("clients", 1usize)?,
        txns_per_client: opts.get("txns", 1usize)?,
        ops_per_txn: opts.get("ops", 1usize)?,
        objects: opts.get("objects", 1u16)?,
        seed: opts.get("seed", 0u64)?,
        narrow: match opts.str("fan", "b").as_str() {
            "n" => true,
            "b" => false,
            other => return Err(format!("bad value for --fan: {other} (want n|b)")),
        },
        knob,
        ..ExploreSetup::default()
    };
    let depth: usize = opts.get("depth", 20usize)?;
    let budget: u64 = opts.get("budget", 1_000_000u64)?;
    let por = match opts.str("por", "on").as_str() {
        "on" => true,
        "off" => false,
        other => return Err(format!("bad value for --por: {other} (want on|off)")),
    };
    let cfg = ExploreConfig {
        max_depth: depth,
        max_states: budget,
        max_transitions: budget.saturating_mul(4),
        por,
        drop_budget: opts.get("drops", 0u32)?,
        crash_budget: opts.get("crashes", 0u32)?,
        ..ExploreConfig::default()
    };
    let out = rexplore::explore_setup::<S>(&protocol, &setup, cfg).map_err(|e| e.to_string())?;
    let st = out.stats;
    println!(
        "explored {} states / {} transitions / {} complete schedules (por {})",
        st.states,
        st.transitions,
        st.schedules,
        if por { "on" } else { "off" }
    );
    println!(
        "max depth {} over {} deepening iterations{}",
        st.max_depth_reached,
        st.iterations,
        if st.budget_exhausted {
            " (budget exhausted)"
        } else {
            ""
        }
    );
    match out.witness {
        None => {
            if st.complete {
                println!("safety oracle: OK on every schedule to depth {depth}");
            } else {
                println!("safety oracle: no violation found before the budget");
            }
            Ok(())
        }
        Some(w) => {
            println!(
                "\nsafety VIOLATION at depth {}: {}",
                w.schedule.len(),
                w.verdict
            );
            let spec = ExploreSpec {
                mode: mode_s,
                setup,
                depth,
                por,
                sched: w.schedule,
            };
            println!("witness: {spec}");
            println!("replay with: qcc explore {ty} --replay '{spec}'");
            Err("exploration found a violating schedule".to_string())
        }
    }
}

/// Drives the real-socket load harness: the same sans-I/O protocol
/// drivers as `simulate`, but hosted over loopback TCP with the client
/// fleet split across independent cells. Queue-only — the harness
/// generates `Enq`/`Deq` workloads (`--deq 0` is the conflict-free
/// Enq-only shape the `exp_load` bench uses).
fn cmd_load(opts: &Opts) -> Result<(), String> {
    let mode_s = opts.str("mode", "hybrid");
    let mode = match mode_s.as_str() {
        "static" => Mode::StaticTs,
        "hybrid" => Mode::Hybrid,
        "dynamic" => Mode::Dynamic2pl,
        other => return Err(format!("unknown mode: {other}")),
    };
    let relation = relation_for::<quorumcc_adts::Queue>(&mode_s)?;
    let backend_s = opts.str("backend", "threads");
    let backend = match backend_s.as_str() {
        "threads" => quorumcc::net::LoadBackend::Threads,
        "eventloop" => quorumcc::net::LoadBackend::EventLoop,
        other => return Err(format!("unknown backend: {other} (threads|eventloop)")),
    };
    let gc_batch = opts.get("gc", 0u64)?;
    let fault_profile = quorumcc::net::NetFaultProfile::parse(&opts.str("fault-profile", "none"))?;
    let crash = match opts.str("crash", "").as_str() {
        "" => None,
        spec => Some(quorumcc::net::CrashSpec::parse(spec)?),
    };
    let retransmit_ms = opts.get("retransmit-ms", 0u64)?;
    let cfg = quorumcc::net::LoadConfig {
        mode,
        relation,
        clusters: opts.get("cells", 1usize)?.max(1),
        n_repos: opts.get("sites", 3u32)?,
        clients: opts.get("clients", 300usize)?,
        txns_per_client: opts.get("txns", 1usize)?,
        ops_per_txn: opts.get("ops", 1usize)?,
        objects: opts.get("objects", 64u16)?,
        workers: opts.get("workers", 1usize)?,
        seed: opts.get("seed", 1u64)?,
        // Ticks are microseconds in the load harness.
        op_timeout_ticks: opts.get("timeout-ms", 10_000u64)?.saturating_mul(1_000),
        narrow: opts.get("narrow", true)?,
        deq_fraction: opts.get("deq", 0.0f64)?,
        ramp: std::time::Duration::from_millis(opts.get("ramp-ms", 1_000u64)?),
        deadline: std::time::Duration::from_secs(opts.get("deadline", 120u64)?),
        scoped_statuses: opts.get("scoped", false)?,
        status_gc: (gc_batch > 0).then_some(gc_batch),
        backend,
        fault_profile,
        poll_min_us: opts.get("poll-min-us", 50u64)?,
        poll_max_us: opts.get("poll-max-us", 3_200u64)?,
        idle_poll_ms: opts.get("idle-poll-ms", 25u64)?,
        // Ticks are microseconds, like --timeout-ms.
        resolve_retransmit: (retransmit_ms > 0).then(|| retransmit_ms.saturating_mul(1_000)),
        crash,
    };
    let report = quorumcc::net::run_load(&cfg);
    println!(
        "{} clients x {} txns over {} cells ({} sites each, {} mode, {} backend)",
        cfg.clients, cfg.txns_per_client, cfg.clusters, cfg.n_repos, report.mode, report.backend
    );
    println!(
        "  committed {}  aborted(attempts) {}  unfinished {}",
        report.committed, report.aborted, report.unfinished
    );
    println!(
        "  {:.0} txn/s   p50 {:.1} ms   p99 {:.1} ms",
        report.txns_per_sec,
        report.p50_us as f64 / 1000.0,
        report.p99_us as f64 / 1000.0
    );
    if report.reconnects > 0 || report.resolve_ack_retransmits > 0 || report.recoveries > 0 {
        println!(
            "  reconnects {}  retransmit_frames {}  resolve_ack_retransmits {}  \
             frontier_stalls {}  recoveries {}",
            report.reconnects,
            report.retransmit_frames,
            report.resolve_ack_retransmits,
            report.frontier_stalls,
            report.recoveries
        );
    }
    println!("{}", report.to_json());
    if report.unfinished > 0 {
        return Err(format!(
            "{} clients did not finish inside --deadline",
            report.unfinished
        ));
    }
    Ok(())
}

/// The options each subcommand accepts — the allowlist behind
/// [`Opts::expect_keys`]. `simulate` and `trace` share the run-shaping
/// options from `builder_from_opts`; `trace` adds the event filters.
fn allowed_opts(cmd: &str) -> &'static [&'static str] {
    const RUN: &[&str] = &[
        "mode",
        "sites",
        "clients",
        "txns",
        "ops",
        "objects",
        "seed",
        "retries",
        "compact-logs",
        "delta",
        "shards",
        "batch",
        "batch-window",
    ];
    const TRACE: &[&str] = &[
        "mode",
        "sites",
        "clients",
        "txns",
        "ops",
        "objects",
        "seed",
        "retries",
        "compact-logs",
        "delta",
        "shards",
        "batch",
        "batch-window",
        "obj",
        "site",
        "action",
        "from",
        "until",
        "limit",
        "save",
    ];
    const CHAOS: &[&str] = &[
        "mode",
        "sites",
        "clients",
        "txns",
        "ops",
        "objects",
        "seed",
        "runs",
        "threads",
        "replay",
        "shards",
        "batch",
        "unsound-weaken-read-quorum",
        "unsound-skip-final-ack",
    ];
    const EXPLORE: &[&str] = &[
        "mode",
        "sites",
        "clients",
        "txns",
        "ops",
        "objects",
        "seed",
        "depth",
        "budget",
        "por",
        "fan",
        "drops",
        "crashes",
        "replay",
        "unsound-weaken-read-quorum",
        "unsound-skip-final-ack",
    ];
    const LOAD: &[&str] = &[
        "mode",
        "cells",
        "sites",
        "clients",
        "txns",
        "ops",
        "objects",
        "workers",
        "seed",
        "timeout-ms",
        "narrow",
        "deq",
        "ramp-ms",
        "deadline",
        "backend",
        "scoped",
        "gc",
        "fault-profile",
        "crash",
        "retransmit-ms",
        "poll-min-us",
        "poll-max-us",
        "idle-poll-ms",
    ];
    match cmd {
        "relations" => &[],
        "load" => LOAD,
        "quorums" => &["sites", "relation", "priority"],
        "frontier" => &["sites", "relation"],
        "reconfig" => &["sites", "relation", "lost", "up", "priority"],
        "trace" => TRACE,
        "chaos" => CHAOS,
        "explore" => EXPLORE,
        _ => RUN,
    }
}

fn usage() -> String {
    "usage: qcc <relations|certificates|quorums|frontier|simulate|trace|reconfig|chaos|explore|load|types> [type] [--key value ...]\n\
     try: qcc relations queue | qcc quorums prom --sites 5 --relation static --priority Read\n\
     \x20    qcc simulate counter --mode hybrid --clients 4 | qcc frontier prom\n\
     \x20    qcc simulate queue --compact-logs true | qcc simulate queue --delta false\n\
     \x20    qcc simulate queue --shards 4 --batch 8 --objects 16 --clients 8\n\
     \x20    qcc trace queue --mode dynamic --action conflict,abort --site 3 --limit 20\n\
     \x20    qcc reconfig prom --sites 5 --lost 4 --relation hybrid --priority Read,Write\n\
     \x20    qcc chaos queue --seed 7 --runs 200 | qcc chaos queue --replay 's=7;...'\n\
     \x20    qcc explore queue --sites 2 --clients 2 --depth 14 | qcc explore queue --replay 'mode=...'\n\
     \x20    qcc load --mode static --clients 2000 --cells 8 | qcc load --backend eventloop --scoped true --gc 64\n\
     trace filters: --obj N --site N --action k1,k2 --from T --until T --limit N --save FILE\n\
     load (real TCP sockets, queue workload): --cells N --sites N --clients N --txns N --ops N\n\
     \x20    --objects N --workers N --seed N --timeout-ms N --narrow BOOL --deq FRAC --ramp-ms N --deadline SECS\n\
     \x20    --backend threads|eventloop --scoped BOOL --gc BATCH (status GC sweep batch, 0 = off)\n\
     \x20    --fault-profile none|lossy|stormy[:seed] (socket fault injection) --crash REPO:AT_MS:DOWN_MS (eventloop)\n\
     \x20    --retransmit-ms N (ResolveAck frontier repair, 0 = off) --poll-min-us N --poll-max-us N --idle-poll-ms N"
        .to_string()
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    match cmd.as_str() {
        "types" => {
            for t in TYPES {
                println!("{t}");
            }
            Ok(())
        }
        "certificates" => {
            for c in certificates::all() {
                print!("{c}");
            }
            Ok(())
        }
        // The load harness is queue-only (its workload generator speaks
        // `QueueInv`), so it takes no type argument.
        "load" => {
            let opts = Opts::parse(&args[1..])?;
            opts.expect_keys(allowed_opts("load"))?;
            cmd_load(&opts)
        }
        "relations" | "quorums" | "frontier" | "simulate" | "trace" | "reconfig" | "chaos"
        | "explore" => {
            let Some(ty) = args.get(1) else {
                return Err(format!("{cmd} needs a type (try `qcc types`)"));
            };
            let opts = Opts::parse(&args[2..])?;
            opts.expect_keys(allowed_opts(cmd))?;
            match cmd.as_str() {
                "relations" => with_type!(ty.as_str(), cmd_relations, &opts),
                "quorums" => with_type!(ty.as_str(), cmd_quorums, &opts),
                "frontier" => with_type!(ty.as_str(), cmd_frontier, &opts),
                "trace" => with_type!(ty.as_str(), cmd_trace, &opts),
                "reconfig" => with_type!(ty.as_str(), cmd_reconfig, &opts),
                "chaos" => with_type!(ty.as_str(), cmd_chaos, ty, &opts),
                "explore" => with_type!(ty.as_str(), cmd_explore, ty, &opts),
                _ => with_type!(ty.as_str(), cmd_simulate, &opts),
            }
        }
        _ => Err(usage()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
