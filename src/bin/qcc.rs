//! `qcc` — the quorumcc command line.
//!
//! ```text
//! qcc relations <type>                 dependency relations + comparison
//! qcc certificates                     re-check the paper's theorems
//! qcc quorums <type> [opts]            optimal threshold assignment
//! qcc frontier <type> [opts]           Pareto frontier of quorum sizes
//! qcc simulate <type> [opts]           run a replicated cluster
//! qcc types                            list available data types
//! ```
//!
//! Types: queue, prom, flagset, doublebuffer, register, counter, account,
//! gset, directory, appendlog.

use quorumcc::core::{battery, certificates, minimal_dynamic_relation, minimal_static_relation};
use quorumcc::model::spec::ExploreBounds;
use quorumcc::model::{Classified, Enumerable};
use quorumcc::quorum::{availability, pareto, threshold};
use quorumcc::replication::cluster::ClusterBuilder;
use quorumcc::replication::protocol::{Mode, Protocol};
use quorumcc::replication::workload::{generate, WorkloadSpec};
use rand::Rng;
use std::collections::HashMap;
use std::process::ExitCode;

const TYPES: &[&str] = &[
    "queue",
    "prom",
    "flagset",
    "doublebuffer",
    "register",
    "counter",
    "account",
    "gset",
    "directory",
    "appendlog",
];

fn bounds() -> ExploreBounds {
    ExploreBounds {
        depth: 4,
        max_states: 4_096,
        budget: 5_000_000,
    }
}

/// Parsed `--key value` options.
struct Opts(HashMap<String, String>);

impl Opts {
    fn parse(args: &[String]) -> Result<Opts, String> {
        let mut map = HashMap::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument: {a}"));
            };
            let Some(v) = it.next() else {
                return Err(format!("--{key} needs a value"));
            };
            map.insert(key.to_string(), v.clone());
        }
        Ok(Opts(map))
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.0.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for --{key}: {v}")),
        }
    }

    fn str(&self, key: &str, default: &str) -> String {
        self.0
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }
}

/// Runs `f` with the sequential type named by `name`.
macro_rules! with_type {
    ($name:expr, $f:ident, $($arg:expr),*) => {
        match $name {
            "queue" => $f::<quorumcc_adts::Queue>($($arg),*),
            "prom" => $f::<quorumcc_adts::Prom>($($arg),*),
            "flagset" => $f::<quorumcc_adts::FlagSet>($($arg),*),
            "doublebuffer" => $f::<quorumcc_adts::DoubleBuffer>($($arg),*),
            "register" => $f::<quorumcc_adts::Register>($($arg),*),
            "counter" => $f::<quorumcc_adts::Counter>($($arg),*),
            "account" => $f::<quorumcc_adts::Account>($($arg),*),
            "gset" => $f::<quorumcc_adts::GSet>($($arg),*),
            "directory" => $f::<quorumcc_adts::Directory>($($arg),*),
            "appendlog" => $f::<quorumcc_adts::AppendLog>($($arg),*),
            other => Err(format!("unknown type: {other} (try `qcc types`)")),
        }
    };
}

fn relation_for<S: Enumerable + Classified>(
    which: &str,
) -> Result<quorumcc::core::DependencyRelation, String> {
    match which {
        "static" | "hybrid" => Ok(minimal_static_relation::<S>(bounds()).relation),
        "dynamic" => Ok(minimal_static_relation::<S>(bounds())
            .relation
            .union(&minimal_dynamic_relation::<S>(bounds()).relation)),
        other => Err(format!("unknown relation/mode: {other}")),
    }
}

fn cmd_relations<S: Enumerable + Classified>(_opts: &Opts) -> Result<(), String> {
    let report = battery::report::<S>(bounds());
    print!("{report}");
    Ok(())
}

fn cmd_quorums<S: Enumerable + Classified>(opts: &Opts) -> Result<(), String> {
    let n: u32 = opts.get("sites", 5u32)?;
    let which = opts.str("relation", "static");
    let rel = relation_for::<S>(&which)?;
    let ops = S::op_classes();
    let evs = S::event_classes();
    let priority_raw = opts.str("priority", "");
    let priority: Vec<&'static str> = ops
        .iter()
        .filter(|op| {
            priority_raw
                .split(',')
                .any(|p| p.trim().eq_ignore_ascii_case(op))
        })
        .copied()
        .collect();
    let ta = threshold::optimize(&rel, n, &ops, &evs, &priority).map_err(|e| e.to_string())?;
    println!("relation ({which}):");
    for line in rel.table().lines() {
        println!("  {line}");
    }
    println!("\noptimal thresholds over {n} sites:");
    print!("{ta}");
    println!("\neffective quorum sizes and availability (p = 0.9):");
    for op in &ops {
        let size = ta.op_size_worst(op, &evs);
        let avail =
            availability::op_availability_worst(&ta, op, &evs, 0.9).map_err(|e| e.to_string())?;
        println!("  {op:>12}: {size} of {n}   availability {avail:.6}");
    }
    Ok(())
}

fn cmd_frontier<S: Enumerable + Classified>(opts: &Opts) -> Result<(), String> {
    let n: u32 = opts.get("sites", 5u32)?;
    let which = opts.str("relation", "static");
    let rel = relation_for::<S>(&which)?;
    let ops = S::op_classes();
    let evs = S::event_classes();
    let f = pareto::frontier(&rel, n, &ops, &evs);
    println!(
        "Pareto frontier of {:?} quorum sizes over {n} sites ({which}):",
        ops
    );
    for p in f {
        println!("  {p:?}");
    }
    Ok(())
}

fn cmd_simulate<S: Enumerable + Classified>(opts: &Opts) -> Result<(), String> {
    let mode = match opts.str("mode", "hybrid").as_str() {
        "static" => Mode::StaticTs,
        "hybrid" => Mode::Hybrid,
        "dynamic" => Mode::Dynamic2pl,
        other => return Err(format!("unknown mode: {other}")),
    };
    let rel = relation_for::<S>(match mode {
        Mode::Dynamic2pl => "dynamic",
        _ => "static",
    })?;
    let spec = WorkloadSpec {
        clients: opts.get("clients", 3usize)?,
        txns_per_client: opts.get("txns", 4usize)?,
        ops_per_txn: opts.get("ops", 2usize)?,
        objects: opts.get("objects", 1u16)?,
        seed: opts.get("seed", 0u64)?,
    };
    let alphabet = S::invocations();
    let workload = generate(spec, |rng| {
        alphabet[rng.gen_range(0..alphabet.len())].clone()
    });
    let report = ClusterBuilder::<S>::new(opts.get("sites", 3u32)?)
        .protocol(Protocol::new(mode, rel))
        .seed(spec.seed)
        .txn_retries(opts.get("retries", 3u32)?)
        .workload(workload)
        .run();
    let t = report.totals();
    println!(
        "mode {mode}: committed {} / conflict aborts {} / unavailable {} / ops {}",
        t.committed, t.aborted_conflict, t.aborted_unavailable, t.ops_completed
    );
    println!(
        "messages sent {} delivered {} dropped {}",
        report.sim_stats.sent, report.sim_stats.delivered, report.sim_stats.dropped
    );
    match report.check_atomicity(bounds()) {
        Ok(()) => println!("atomicity check: OK"),
        Err(o) => return Err(format!("atomicity VIOLATION on {o}")),
    }
    Ok(())
}

fn usage() -> String {
    "usage: qcc <relations|certificates|quorums|frontier|simulate|types> [type] [--key value ...]\n\
     try: qcc relations queue | qcc quorums prom --sites 5 --relation static --priority Read\n\
     \x20    qcc simulate counter --mode hybrid --clients 4 | qcc frontier prom"
        .to_string()
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    match cmd.as_str() {
        "types" => {
            for t in TYPES {
                println!("{t}");
            }
            Ok(())
        }
        "certificates" => {
            for c in certificates::all() {
                print!("{c}");
            }
            Ok(())
        }
        "relations" | "quorums" | "frontier" | "simulate" => {
            let Some(ty) = args.get(1) else {
                return Err(format!("{cmd} needs a type (try `qcc types`)"));
            };
            let opts = Opts::parse(&args[2..])?;
            match cmd.as_str() {
                "relations" => with_type!(ty.as_str(), cmd_relations, &opts),
                "quorums" => with_type!(ty.as_str(), cmd_quorums, &opts),
                "frontier" => with_type!(ty.as_str(), cmd_frontier, &opts),
                _ => with_type!(ty.as_str(), cmd_simulate, &opts),
            }
        }
        _ => Err(usage()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
